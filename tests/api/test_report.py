"""JSON round-trips and verdict aggregation for the report hierarchy."""

import json

from repro.api import (
    CounterexampleData,
    ObligationOutcome,
    QueryOutcome,
    RunReport,
    TaskResult,
    worst_verdict,
)
from repro.checker.result import Counterexample, HOLDS, UNKNOWN, VIOLATED
from repro.counter.actions import Action


def roundtrip(obj, cls):
    """to_dict → JSON text → from_dict; must compare equal."""
    restored = cls.from_dict(json.loads(json.dumps(obj.to_dict())))
    assert restored == obj
    return restored


def make_ce() -> CounterexampleData:
    return CounterexampleData(
        valuation={"n": 4, "t": 1, "f": 1},
        initial_placement={"J0": 2, "J1": 2},
        schedule=(("r1", 0, None), ("r9", 0, "H"), ("r3", 1, None)),
        description="violates inv1[0]",
    )


def make_task_result() -> TaskResult:
    queries = (
        QueryOutcome(query="inv1[0]", verdict=VIOLATED, states_explored=77,
                     time_seconds=0.25, counterexample=make_ce()),
        QueryOutcome(query="inv1[1]", verdict=UNKNOWN, states_explored=1000,
                     limit_tripped="max_states", detail="state budget"),
    )
    outcome = ObligationOutcome(
        target="agreement",
        queries=queries,
        side_conditions={"non_blocking": True, "fair_termination": False},
        time_seconds=0.5,
    )
    return TaskResult(
        task_id="mmr14[f=1,n=4,t=1]/agreement@explicit",
        protocol="mmr14",
        engine="explicit",
        valuation={"n": 4, "t": 1, "f": 1},
        obligations=(outcome,),
        time_seconds=0.6,
    )


class TestWorstVerdict:
    def test_severity_order(self):
        assert worst_verdict([]) == HOLDS
        assert worst_verdict([HOLDS, HOLDS]) == HOLDS
        assert worst_verdict([HOLDS, UNKNOWN]) == UNKNOWN
        assert worst_verdict([UNKNOWN, "error"]) == "error"
        assert worst_verdict([HOLDS, VIOLATED, UNKNOWN]) == VIOLATED


class TestCounterexampleData:
    def test_roundtrip(self):
        roundtrip(make_ce(), CounterexampleData)

    def test_from_checker_counterexample(self):
        ce = Counterexample(
            valuation={"n": 3, "f": 1},
            initial_placement={"I0": 1},
            schedule=(Action("r1", 0), Action("r9", 1, "T")),
            description="demo",
        )
        data = CounterexampleData.from_counterexample(ce)
        assert data.schedule == (("r1", 0, None), ("r9", 1, "T"))
        # The schedule rebuilds into replayable Action objects.
        assert data.actions() == ce.schedule
        # Same human rendering as the checker-native counterexample.
        assert str(data) == str(ce)

    def test_roundtrip_preserves_branch_none(self):
        restored = roundtrip(make_ce(), CounterexampleData)
        assert restored.schedule[0][2] is None
        assert restored.schedule[1][2] == "H"


class TestOutcomes:
    def test_query_roundtrip(self):
        for query in make_task_result().queries:
            roundtrip(query, QueryOutcome)

    def test_obligation_aggregation(self):
        outcome = make_task_result().obligations[0]
        assert outcome.verdict == VIOLATED  # violated dominates unknown
        assert outcome.states_explored == 1077
        assert outcome.limit_tripped == "max_states"
        assert outcome.counterexample == make_ce()

    def test_failed_side_condition_taints_holds(self):
        outcome = ObligationOutcome(
            target="validity",
            queries=(QueryOutcome(query="inv2[0]", verdict=HOLDS),),
            side_conditions={"non_blocking": False},
        )
        assert outcome.verdict == UNKNOWN

    def test_obligation_roundtrip(self):
        roundtrip(make_task_result().obligations[0], ObligationOutcome)


class TestTaskResult:
    def test_roundtrip(self):
        roundtrip(make_task_result(), TaskResult)

    def test_error_result(self):
        result = TaskResult(task_id="x", protocol="x", engine="explicit",
                            error="CheckError: boom")
        assert result.verdict == "error"
        roundtrip(result, TaskResult)

    def test_outcome_lookup(self):
        result = make_task_result()
        assert result.outcome("agreement").target == "agreement"
        try:
            result.outcome("validity")
        except KeyError:
            pass
        else:
            raise AssertionError("expected KeyError")


class TestRunReport:
    def test_roundtrip(self):
        report = RunReport(
            results=(make_task_result(),),
            processes=4,
            code_version="abc123",
            time_seconds=1.5,
            cache_hits=1,
        )
        roundtrip(report, RunReport)

    def test_summary_mentions_every_task(self):
        report = RunReport(results=(make_task_result(),), processes=2)
        text = report.summary()
        assert "mmr14[f=1,n=4,t=1]/agreement@explicit" in text
        assert "2 processes" in text
        assert "limit:max_states" in text


class TestSupervisionMetadata:
    """attempts / timed_out / worker_restarts / resumed survive JSON —
    and stay *out* of the payload at their defaults, so undisturbed
    reports remain byte-identical to pre-supervision ones."""

    def test_task_result_roundtrip_with_retry_fields(self):
        from dataclasses import replace

        result = replace(make_task_result(), attempts=3, timed_out=True)
        restored = roundtrip(result, TaskResult)
        assert restored.attempts == 3
        assert restored.timed_out is True
        assert result.to_dict()["attempts"] == 3
        assert result.to_dict()["timed_out"] is True

    def test_default_retry_fields_are_not_emitted(self):
        payload = make_task_result().to_dict()
        assert "attempts" not in payload
        assert "timed_out" not in payload
        restored = TaskResult.from_dict(payload)
        assert restored.attempts == 1
        assert restored.timed_out is False

    def test_run_report_roundtrip_with_supervision_fields(self):
        report = RunReport(results=(make_task_result(),), processes=4,
                           worker_restarts=2, resumed=3)
        restored = roundtrip(report, RunReport)
        assert restored.worker_restarts == 2
        assert restored.resumed == 3

    def test_default_supervision_fields_are_not_emitted(self):
        payload = RunReport(results=(), processes=1).to_dict()
        assert "worker_restarts" not in payload
        assert "resumed" not in payload
        restored = RunReport.from_dict(payload)
        assert restored.worker_restarts == 0
        assert restored.resumed == 0

    def test_summary_mentions_supervision_events(self):
        from dataclasses import replace

        flaky = replace(make_task_result(), attempts=2, timed_out=True)
        report = RunReport(results=(flaky,), processes=2,
                           worker_restarts=1, resumed=1)
        text = report.summary()
        assert "attempts:2" in text
        assert "timed-out" in text
        assert "1 worker restart" in text
        assert "1 resumed" in text


class TestServiceMetadata:
    """deduped / request_id survive JSON — and stay out of the payload
    at their defaults, so local-run reports (and every golden/cache
    blob written before the service existed) keep their exact bytes."""

    def test_task_result_roundtrip_with_deduped(self):
        result = make_task_result().as_deduped()
        assert result.deduped is True
        restored = roundtrip(result, TaskResult)
        assert restored.deduped is True
        assert result.to_dict()["deduped"] is True

    def test_default_service_fields_are_not_emitted(self):
        payload = make_task_result().to_dict()
        assert "deduped" not in payload
        assert TaskResult.from_dict(payload).deduped is False
        report_payload = RunReport(results=(), processes=1).to_dict()
        assert "request_id" not in report_payload
        assert "deduped" not in report_payload
        restored = RunReport.from_dict(report_payload)
        assert restored.request_id == "" and restored.deduped == 0

    def test_run_report_roundtrip_with_service_fields(self):
        report = RunReport(results=(make_task_result(),), processes=2,
                           request_id="r000042", deduped=3, cache_hits=1)
        restored = roundtrip(report, RunReport)
        assert restored.request_id == "r000042"
        assert restored.deduped == 3

    def test_as_deduped_does_not_disturb_the_verdict_payload(self):
        result = make_task_result()
        plain, marked = result.to_dict(), result.as_deduped().to_dict()
        marked.pop("deduped")
        assert plain == marked  # identical bytes apart from the flag

    def test_summary_mentions_service_events(self):
        report = RunReport(results=(make_task_result().as_deduped(),),
                           processes=2, request_id="r000007", deduped=1)
        text = report.summary()
        assert "deduped" in text
        assert "request r000007" in text
