"""ResultCache durability: concurrent writers, disk failures, orphans.

The cache is an optimization layered under :class:`repro.api.sweep.
SweepRunner`; nothing it does on a bad day — two pool workers racing on
one key, a full disk, a crashed writer's leftovers — may corrupt an
entry or abort a sweep.
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro import api
from repro.api.sweep import ResultCache


def _result(tag: str = "x") -> api.TaskResult:
    return api.TaskResult(
        task_id=f"task-{tag}", protocol="cc85a", engine="explicit",
        valuation={"n": 4, "t": 1, "f": 1},
        obligations=(
            api.ObligationOutcome(
                target="validity",
                queries=(api.QueryOutcome(query="q", verdict="holds",
                                          states_explored=7),),
            ),
        ),
    )


def _hammer(args):
    """Worker: write the same key many times; the blob must stay whole."""
    root, key, rounds, tag = args
    cache = ResultCache(Path(root), version="v-test")
    for index in range(rounds):
        cache.put(key, _result(f"{tag}-{index}"))
    return cache.put_errors


class TestConcurrentWriters:
    def test_parallel_same_key_puts_never_yield_unparsable_file(self, tmp_path):
        key = "deadbeef" * 4
        workers = 4
        rounds = 25
        with multiprocessing.Pool(workers) as pool:
            async_result = pool.map_async(
                _hammer,
                [(str(tmp_path), key, rounds, tag) for tag in range(workers)],
            )
            # Read concurrently with the writers: the atomic rename
            # must never expose a torn entry (get returning None here
            # would mean an unparsable blob was published).
            reader = ResultCache(tmp_path, version="v-test")
            seen = 0
            while not async_result.ready():
                cached = reader.get(key)
                if cached is not None:
                    seen += 1
                    assert cached.protocol == "cc85a"
            put_errors = async_result.get()
        assert sum(put_errors) == 0
        final = reader.get(key)
        assert final is not None and final.cached
        # Unique per-writer temp names: no orphan survives a clean run.
        assert list(tmp_path.glob("*.tmp")) == []
        assert seen > 0

    def test_unique_temp_names_for_same_key(self, tmp_path):
        from repro.counter.store import unique_temp_path

        path = tmp_path / "abc.json"
        names = {unique_temp_path(path).name for _ in range(32)}
        assert len(names) == 32
        assert all(name.startswith("abc.json.") and name.endswith(".tmp")
                   for name in names)
        assert all(f".{os.getpid()}." in name for name in names)


class TestBestEffortPut:
    def test_disk_failure_is_swallowed_and_recorded(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        monkeypatch.setattr(
            Path, "write_text",
            lambda self, *a, **k: (_ for _ in ()).throw(OSError(28, "no space")),
        )
        cache.put("a" * 32, _result())  # must not raise
        assert cache.put_errors == 1
        assert isinstance(cache.last_error, OSError)
        assert cache.get("a" * 32) is None
        assert list(tmp_path.glob("*.tmp")) == []

    def test_disk_failure_mid_sweep_keeps_the_sweep_alive(self, tmp_path, monkeypatch):
        runner = api.SweepRunner(cache_dir=str(tmp_path))
        monkeypatch.setattr(
            Path, "write_text",
            lambda self, *a, **k: (_ for _ in ()).throw(OSError(28, "no space")),
        )
        report = runner.run(
            [api.VerificationTask(protocol="cc85a", targets=("validity",))]
        )
        assert report.results[0].verdict == "holds"
        assert runner.cache.put_errors == 1
        # Nothing was cached, so a second sweep recomputes (no crash).
        assert runner.run(
            [api.VerificationTask(protocol="cc85a", targets=("validity",))]
        ).cache_hits == 0

    def test_temp_file_cleaned_up_on_rename_failure(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        monkeypatch.setattr(
            Path, "replace",
            lambda self, target: (_ for _ in ()).throw(OSError(13, "denied")),
        )
        cache.put("b" * 32, _result())
        assert cache.put_errors == 1
        assert list(tmp_path.glob("*.tmp")) == []


class TestOrphanPruning:
    def test_stale_temp_files_pruned_on_init(self, tmp_path):
        stale = tmp_path / "old.json.123.aaaa.tmp"
        stale.write_text("{")
        ancient = time.time() - 3600
        os.utime(stale, (ancient, ancient))
        fresh = tmp_path / "new.json.456.bbbb.tmp"
        fresh.write_text("{")
        ResultCache(tmp_path)
        assert not stale.exists(), "crashed-writer orphan must be pruned"
        assert fresh.exists(), "a live writer's temp file must survive"

    def test_entries_survive_init_pruning(self, tmp_path):
        cache = ResultCache(tmp_path, version="v")
        cache.put("c" * 32, _result())
        ResultCache(tmp_path, version="v")
        assert cache.get("c" * 32) is not None


class TestVersionStamp:
    def test_blob_embeds_code_version_and_still_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path, version="stamp-1")
        key = "d" * 32
        cache.put(key, _result())
        (path,) = tmp_path.glob("*.json")
        blob = json.loads(path.read_text())
        assert blob["_code_version"] == "stamp-1"
        assert ResultCache.entry_version(path) == "stamp-1"
        cached = cache.get(key)
        assert cached is not None
        assert cached.as_cached() == _result().as_cached()

    def test_entry_version_of_garbage_is_none(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        assert ResultCache.entry_version(path) is None


class TestCorruptEntries:
    @pytest.mark.parametrize("blob", ["", "{", '{"task_id": 1}', "[]"])
    def test_bad_entry_is_a_miss_not_a_crash(self, tmp_path, blob):
        cache = ResultCache(tmp_path)
        key = "e" * 32
        (tmp_path / f"{key}.json").write_text(blob)
        assert cache.get(key) is None
