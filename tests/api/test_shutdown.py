"""SIGTERM mid-sweep: journal flushed, workers reaped, run resumable.

Satellite of the service PR: ``SweepRunner.run`` installs a SIGTERM
handler that converts the signal into ``SystemExit(143)`` so the
``finally`` blocks run — the journal closes with every completed task
on disk and the pool reaps its workers instead of orphaning them.
These tests drive the real CLI in a subprocess and send the real
signal.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

#: cc85a and ks16 finish (and journal) in well under a second;
#: rabin83/agreement then holds a worker for seconds — the window in
#: which the test delivers SIGTERM.
MATRIX = "cc85a,ks16,rabin83"


def launch_sweep(journal, extra=()):
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.harness", "sweep",
         "--protocols", MATRIX, "--targets", "agreement",
         "--processes", "2", "--journal", str(journal), *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )


def children_of(pid):
    """Worker pids forked by ``pid``, via /proc (linux only)."""
    found = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            stat = (entry / "stat").read_text()
        except OSError:
            continue
        fields = stat.rsplit(")", 1)[1].split()
        if int(fields[1]) == pid:  # ppid is the field after state
            found.append(int(entry.name))
    return found


def journal_records(path):
    if not path.exists():
        return []
    lines = path.read_text().splitlines()
    return [json.loads(line) for line in lines[1:] if line.strip()]


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
class TestSigtermMidSweep:
    def test_sigterm_flushes_journal_reaps_workers_and_resumes(
        self, tmp_path
    ):
        journal = tmp_path / "sweep-journal.jsonl"
        proc = launch_sweep(journal)
        try:
            # Wait for the fast tasks to land in the journal — at that
            # point rabin83 is mid-flight on a warm worker.
            deadline = time.monotonic() + 120.0
            while len(journal_records(journal)) < 2:
                assert proc.poll() is None, proc.stderr.read().decode()
                assert time.monotonic() < deadline, "journal never filled"
                time.sleep(0.05)
            workers = children_of(proc.pid)
            assert workers, "pool never forked workers"
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait()
            proc.stdout.close()
            proc.stderr.close()

        assert proc.returncode == 143  # 128 + SIGTERM
        # No orphans: every forked worker is gone shortly after exit.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            alive = [pid for pid in workers if _alive(pid)]
            if not alive:
                break
            time.sleep(0.1)
        assert not alive, f"orphaned workers survive: {alive}"
        # The journal survived the signal with the fast tasks intact.
        completed = {record["key"] for record in journal_records(journal)}
        assert any("cc85a" in task for task in completed)
        assert any("ks16" in task for task in completed)

        # ... and a --resume run replays them instead of recomputing.
        resumed = launch_sweep(journal, extra=("--resume", "--json"))
        out, err = resumed.communicate(timeout=600.0)
        assert resumed.returncode == 0, err.decode()
        report = json.loads(out)
        assert report.get("resumed", 0) >= 2
        verdicts = {r["protocol"]: r["verdict"] for r in report["results"]}
        assert verdicts == {"cc85a": "holds", "ks16": "holds",
                            "rabin83": "holds"}


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
