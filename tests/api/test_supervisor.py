"""SupervisedPool / RetryPolicy: crash recovery, timeouts, retries.

These tests drive the pool with tiny picklable payloads and
module-level targets (pool workers are separate processes), injecting
deterministic failures through :mod:`repro.testing.faults` — the same
plumbing the sweep-level chaos suite uses, minus the engines.
"""

import os
import time

from repro.api.supervisor import PoolOutcome, RetryPolicy, SupervisedPool
from repro.testing import FaultPlan

#: Fast backoff so retry tests don't sleep their wall-clock away.
FAST = RetryPolicy(max_attempts=3, base_delay=0.01, max_delay=0.05)


# -- module-level pool targets (must be importable in workers) ---------
def _double(x):
    return x + x


def _pid_tag(x):
    return (os.getpid(), x + x)


def _slow_double(payload):
    value, seconds = payload
    time.sleep(seconds)
    return value + value


def _raise(x):
    raise ValueError(f"boom {x}")


def _unpicklable(x):
    return lambda: x  # cannot cross the result pipe


def _flaky(payload):
    # First call wins the marker and reports transient; retries succeed.
    value, marker = payload
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        os.close(fd)
        return "transient"
    except FileExistsError:
        return f"ok-{value}"


def _always_transient(x):
    return "transient"


def _broken_init():
    raise RuntimeError("worker startup is poisoned")


def _fallback(payload, exc):
    return f"fallback:{type(exc).__name__}"


def _failure(payload, kind, detail):
    return f"failed:{kind}"


def _is_transient(result):
    return result == "transient"


class TestRetryPolicy:
    def test_of_coerces_none_int_and_policy(self):
        assert RetryPolicy.of(None) == RetryPolicy()
        assert RetryPolicy.of(5).max_attempts == 5
        assert RetryPolicy.of(0).max_attempts == 1  # at least one attempt
        policy = RetryPolicy(max_attempts=7)
        assert RetryPolicy.of(policy) is policy

    def test_delay_is_deterministic_per_seed_key_attempt(self):
        policy = RetryPolicy()
        assert policy.delay(2, "mmr14") == policy.delay(2, "mmr14")
        # Different keys / attempts / seeds decorrelate the jitter.
        assert policy.delay(2, "mmr14") != policy.delay(2, "rabin83")
        assert policy.delay(1, "mmr14") != policy.delay(2, "mmr14")
        assert policy.delay(2, "mmr14") != \
            RetryPolicy(seed=1).delay(2, "mmr14")

    def test_delay_stays_within_jitter_band(self):
        policy = RetryPolicy(base_delay=0.05, backoff=2.0, max_delay=2.0,
                             jitter=0.5)
        for attempt in range(1, 12):
            raw = min(2.0, 0.05 * 2.0 ** (attempt - 1))
            delay = policy.delay(attempt, "key")
            assert raw * 0.5 <= delay <= raw * 1.5
        # The cap bounds even huge attempt numbers.
        assert policy.delay(50, "key") <= 2.0 * 1.5

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=1.0,
                             jitter=0.0)
        assert [policy.delay(a) for a in (1, 2, 3, 4, 5)] == \
            [0.1, 0.2, 0.4, 0.8, 1.0]


class TestSupervisedPool:
    def test_happy_path_one_result_per_item(self):
        pool = SupervisedPool(2, _double)
        outcome = pool.run([[(i, i)] for i in range(5)])
        assert outcome.results == {i: i + i for i in range(5)}
        assert all(outcome.attempts[i] == 1 for i in range(5))
        assert outcome.worker_restarts == 0
        assert outcome.retries == 0

    def test_empty_jobs_complete_immediately(self):
        outcome = SupervisedPool(2, _double).run([])
        assert outcome == PoolOutcome()

    def test_shard_job_streams_each_item(self):
        seen = []
        pool = SupervisedPool(1, _double)
        outcome = pool.run(
            [[(0, "a"), (1, "b"), (2, "c")]],
            on_result=lambda index, result, attempts, timed_out:
                seen.append((index, result, attempts, timed_out)),
        )
        assert outcome.results == {0: "aa", 1: "bb", 2: "cc"}
        assert sorted(seen) == [(0, "aa", 1, False), (1, "bb", 1, False),
                                (2, "cc", 1, False)]

    def test_raising_target_degrades_via_fallback(self):
        pool = SupervisedPool(1, _raise, fallback=_fallback)
        outcome = pool.run([[(0, "x")]])
        assert outcome.results == {0: "fallback:ValueError"}

    def test_unpicklable_result_degrades_instead_of_killing_the_run(self):
        pool = SupervisedPool(1, _unpicklable, fallback=_fallback)
        outcome = pool.run([[(0, "x"), (1, "y")]])
        assert set(outcome.results) == {0, 1}
        assert all(str(r).startswith("fallback:")
                   for r in outcome.results.values())

    def test_killed_worker_is_respawned_and_item_retried(self, tmp_path):
        plan = FaultPlan(scratch=str(tmp_path)).kill_task("victim", nth=1)
        pool = SupervisedPool(2, _double, retry=FAST, failure=_failure,
                              fault_plan=plan)
        outcome = pool.run([[(0, "victim")], [(1, "other")]])
        assert outcome.results == {0: "victimvictim", 1: "otherother"}
        assert outcome.attempts[0] == 2
        assert outcome.worker_restarts >= 1

    def test_mid_shard_kill_salvages_completed_items(self, tmp_path):
        # The worker dies picking up the shard's second item; the first
        # item's already-reported result must not be recomputed.
        plan = FaultPlan(scratch=str(tmp_path)).kill_task("second", nth=1)
        pool = SupervisedPool(1, _double, retry=FAST, failure=_failure,
                              fault_plan=plan)
        outcome = pool.run([[(0, "first"), (1, "second"), (2, "third")]])
        assert outcome.results == {0: "firstfirst", 1: "secondsecond",
                                   2: "thirdthird"}
        assert outcome.attempts[0] == 1  # salvaged, not replayed
        assert outcome.attempts[1] == 2
        assert outcome.worker_restarts == 1

    def test_hung_item_is_killed_by_supervisor_timeout(self, tmp_path):
        plan = FaultPlan(scratch=str(tmp_path)).hang_task(
            "victim", seconds=60.0, times=1)
        pool = SupervisedPool(2, _double, task_timeout=0.5, retry=FAST,
                              failure=_failure, fault_plan=plan)
        start = time.monotonic()
        outcome = pool.run([[(0, "victim")], [(1, "other")]])
        assert time.monotonic() - start < 30.0  # never waits the 60s out
        assert outcome.results == {0: "victimvictim", 1: "otherother"}
        assert outcome.timed_out.get(0) is True
        assert outcome.attempts[0] == 2
        assert outcome.worker_restarts >= 1

    def test_exhausted_attempts_record_failure_result(self, tmp_path):
        plan = FaultPlan(scratch=str(tmp_path)).kill_task("victim", times=0)
        pool = SupervisedPool(
            2, _double, retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            failure=_failure, fault_plan=plan)
        outcome = pool.run([[(0, "victim")], [(1, "other")]])
        assert outcome.results == {0: "failed:WorkerCrash",
                                   1: "otherother"}
        assert outcome.attempts[0] == 2

    def test_transient_result_is_retried_until_success(self, tmp_path):
        marker = str(tmp_path / "first-attempt")
        pool = SupervisedPool(1, _flaky, retry=FAST,
                              transient=_is_transient)
        outcome = pool.run([[(0, ("t", marker))]])
        assert outcome.results == {0: "ok-t"}
        assert outcome.attempts[0] == 2
        assert outcome.retries == 1
        assert outcome.worker_restarts == 0  # retry, not respawn

    def test_transient_result_sticks_when_attempts_run_out(self):
        pool = SupervisedPool(1, _always_transient, retry=FAST,
                              transient=_is_transient)
        outcome = pool.run([[(0, "x")]])
        # Attempts exhausted: the transient result itself is recorded.
        assert outcome.results == {0: "transient"}
        assert outcome.attempts[0] == FAST.max_attempts

    def test_broken_initializer_fails_items_instead_of_hanging(self):
        pool = SupervisedPool(
            2, _double, initializer=_broken_init,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            failure=_failure)
        start = time.monotonic()
        outcome = pool.run([[(0, "a")], [(1, "b")]])
        assert time.monotonic() - start < 60.0
        assert set(outcome.results) == {0, 1}
        assert all(r in ("failed:WorkerCrash", "failed:PoolBroken")
                   for r in outcome.results.values())


class TestPersistentPool:
    """start()/close(): one warm fleet serving many run() batches."""

    def test_workers_survive_across_batches(self):
        with SupervisedPool(2, _pid_tag) as pool:
            assert pool.persistent
            first = pool.run([[(i, i)] for i in range(4)])
            second = pool.run([[(i, i)] for i in range(4)])
        pids_first = {pid for pid, _ in first.results.values()}
        pids_second = {pid for pid, _ in second.results.values()}
        assert first.worker_restarts == 0 and second.worker_restarts == 0
        # Same fleet, both batches: no forks in between.
        assert pids_first == pids_second and len(pids_first) == 2
        assert {v for _, v in second.results.values()} == {0, 2, 4, 6}

    def test_start_is_idempotent_and_close_reaps(self):
        pool = SupervisedPool(2, _pid_tag)
        pool.start()
        workers = list(pool._workers)
        pool.start()
        assert pool._workers == workers  # no second fleet
        pool.close()
        assert not pool.persistent
        assert all(not w.process.is_alive() for w in workers)
        pool.close()  # idempotent

    def test_crash_mid_batch_respawns_within_the_fleet(self, tmp_path):
        plan = FaultPlan(scratch=str(tmp_path)).kill_task("victim", nth=1)
        with SupervisedPool(2, _double, retry=FAST, failure=_failure,
                            fault_plan=plan) as pool:
            outcome = pool.run([[(0, "victim")], [(1, "other")]])
            assert outcome.results == {0: "victimvictim", 1: "otherother"}
            assert outcome.worker_restarts >= 1
            # The respawned fleet keeps serving subsequent batches.
            again = pool.run([[(2, "more")]])
            assert again.results == {2: "moremore"}
            assert again.worker_restarts == 0

    def test_stop_returns_early_with_partial_results(self):
        stopped = {"flag": False}
        landed = []

        def on_result(index, result, _attempts, _timed_out):
            landed.append(index)
            stopped["flag"] = True  # stop after the first completion

        with SupervisedPool(2, _slow_double) as pool:
            outcome = pool.run(
                [[(0, ("fast", 0.0))], [(1, ("slow", 30.0))]],
                on_result=on_result,
                stop=lambda: stopped["flag"],
            )
        # The fast item landed; the slow one was abandoned, not awaited.
        assert 0 in outcome.results
        assert 1 not in outcome.results
        assert landed == [0]
