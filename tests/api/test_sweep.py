"""SweepRunner: determinism across pool sizes, caching, golden sweep."""

import json
from pathlib import Path

import pytest

from repro import api

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "checker" / "data" / "seed_verdicts.json")
    .read_text()
)

ALL_PROTOCOLS = tuple(GOLDEN)


def stable(report: api.RunReport) -> list:
    """The report minus wall-clock timings and cache flags."""
    out = []
    for result in report.results:
        out.append({
            "task_id": result.task_id,
            "verdict": result.verdict,
            "error": result.error,
            "obligations": [
                {
                    "target": o.target,
                    "queries": [
                        [q.query, q.verdict, q.states_explored,
                         q.limit_tripped,
                         q.counterexample.to_dict() if q.counterexample else None]
                        for q in o.queries
                    ],
                    "sides": dict(o.side_conditions),
                }
                for o in result.obligations
            ],
        })
    return out


class TestDeterminism:
    def test_processes_1_vs_4_bit_identical(self):
        """The 8-protocol validity sweep is identical across pool sizes."""
        serial = api.sweep(protocols=ALL_PROTOCOLS, targets=("validity",),
                           processes=1)
        parallel = api.sweep(protocols=ALL_PROTOCOLS, targets=("validity",),
                             processes=4)
        assert stable(serial) == stable(parallel)
        # ... and both match the seed's golden verdicts.
        for result in parallel.results:
            (outcome,) = result.obligations
            got = {
                "queries": [[q.query, q.verdict, q.states_explored]
                            for q in outcome.queries],
                "sides": dict(outcome.side_conditions),
            }
            assert got == GOLDEN[result.protocol]["validity"]

    def test_results_keep_task_order(self):
        report = api.sweep(protocols=("ks16", "cc85a"), targets=("validity",),
                           processes=2)
        assert [r.protocol for r in report.results] == ["ks16", "cc85a"]

    def test_error_task_does_not_kill_the_sweep(self):
        tasks = [
            api.VerificationTask(protocol="cc85a", targets=("validity",)),
            api.VerificationTask(protocol="nope", targets=("validity",)),
        ]
        report = api.SweepRunner(processes=2).run(tasks)
        assert report.results[0].verdict == "holds"
        assert report.results[1].verdict == "error"
        assert "nope" in report.results[1].error
        assert report.verdict == "error"


class TestShardedScheduling:
    MATRIX = dict(
        protocols=("cc85a", "ks16"),
        valuations=({"n": 4, "t": 1, "f": 1}, {"n": 5, "t": 1, "f": 1}),
        targets=("validity",),
    )

    def test_unknown_scheduling_mode_rejected(self):
        from repro.errors import CheckError

        with pytest.raises(CheckError, match="scheduling"):
            api.SweepRunner(scheduling="zigzag")

    def test_sharded_matches_flat_at_1_and_2_processes(self):
        reports = [
            api.sweep(**self.MATRIX, processes=processes, scheduling=scheduling)
            for scheduling in ("flat", "sharded")
            for processes in (1, 2)
        ]
        stables = [stable(report) for report in reports]
        assert all(s == stables[0] for s in stables[1:])
        # Input task order survives shard grouping and reassembly.
        assert [r.protocol for r in reports[-1].results] == [
            "cc85a", "cc85a", "ks16", "ks16"
        ]

    def test_shard_key_groups_by_protocol(self):
        tasks = api.task_matrix(**self.MATRIX)
        assert [t.shard_key for t in tasks] == ["cc85a", "cc85a", "ks16", "ks16"]

    def test_sharded_sweep_uses_cache(self, tmp_path):
        kwargs = dict(**self.MATRIX, cache_dir=str(tmp_path),
                      scheduling="sharded", processes=2)
        first = api.sweep(**kwargs)
        assert first.cache_hits == 0
        second = api.sweep(**kwargs)
        assert second.cache_hits == 4
        assert stable(first) == stable(second)

    def test_error_task_does_not_kill_its_shard(self):
        tasks = [
            api.VerificationTask(protocol="cc85a", targets=("validity",)),
            api.VerificationTask(protocol="cc85a", targets=("validity",),
                                 valuation={"n": 1, "t": 1, "f": 1}),
            api.VerificationTask(protocol="ks16", targets=("validity",)),
        ]
        report = api.SweepRunner(processes=2, scheduling="sharded").run(tasks)
        assert [r.verdict for r in report.results] == ["holds", "error", "holds"]
        assert "resilience" in report.results[1].error

    def test_code_version_seed_roundtrip(self):
        import importlib

        # repro.api re-exports a sweep() *function*; fetch the module.
        sweep_module = importlib.import_module("repro.api.sweep")

        original = sweep_module.code_version()
        try:
            sweep_module._seed_code_version("feedface00000000")
            assert sweep_module.code_version() == "feedface00000000"
        finally:
            sweep_module._seed_code_version(original)
        assert sweep_module.code_version() == original


class TestCache:
    def test_second_sweep_is_served_from_cache(self, tmp_path):
        kwargs = dict(protocols=("cc85a", "ks16"), targets=("validity",),
                      cache_dir=str(tmp_path))
        first = api.sweep(**kwargs)
        assert first.cache_hits == 0
        second = api.sweep(**kwargs)
        assert second.cache_hits == 2
        assert all(r.cached for r in second.results)
        assert stable(first) == stable(second)

    def test_cache_key_separates_engines_and_limits(self, tmp_path):
        runner = api.SweepRunner(cache_dir=str(tmp_path))
        base = api.VerificationTask(protocol="cc85a", targets=("validity",))
        keys = {
            runner.cache.key_for(base),
            runner.cache.key_for(base.with_engine("parameterized")),
            runner.cache.key_for(
                api.VerificationTask(protocol="cc85a", targets=("validity",),
                                     limits=api.Limits(max_states=7))
            ),
            runner.cache.key_for(
                api.VerificationTask(protocol="cc85a", targets=("validity",),
                                     valuation={"n": 7, "t": 2, "f": 2})
            ),
        }
        assert len(keys) == 4

    def test_code_version_invalidates(self, tmp_path):
        report = api.SweepRunner(cache_dir=str(tmp_path)).run(
            [api.VerificationTask(protocol="cc85a", targets=("validity",))]
        )
        assert report.cache_hits == 0
        stale = api.SweepRunner(cache_dir=str(tmp_path),
                                cache_version="other-version").run(
            [api.VerificationTask(protocol="cc85a", targets=("validity",))]
        )
        assert stale.cache_hits == 0

    def test_wall_clock_trips_are_not_cached(self, tmp_path):
        # A max_seconds unknown is load-dependent; it must be retried,
        # not replayed from the cache forever.
        kwargs = dict(protocols=("cc85b",), targets=("agreement",),
                      limits=api.Limits(max_seconds=0.0),
                      cache_dir=str(tmp_path))
        first = api.sweep(**kwargs)
        assert first.results[0].limit_tripped == "max_seconds"
        second = api.sweep(**kwargs)
        assert second.cache_hits == 0
        # Deterministic limits (max_states) stay cacheable.
        kwargs = dict(protocols=("cc85b",), targets=("agreement",),
                      limits=api.Limits(max_states=100),
                      cache_dir=str(tmp_path))
        api.sweep(**kwargs)
        assert api.sweep(**kwargs).cache_hits == 1

    def test_skipped_side_conditions_are_not_cacheable(self):
        # Queries may finish in budget while the side conditions get cut
        # off — still a load-dependent result, never cached.  Another
        # limit tripping first must not mask the max_seconds skip.
        result = api.TaskResult(
            task_id="t", protocol="p", engine="explicit",
            obligations=(
                api.ObligationOutcome(
                    target="agreement",
                    queries=(api.QueryOutcome(query="q", verdict="unknown",
                                              limit_tripped="max_states"),),
                    skipped_side_conditions={"fair_termination": "max_seconds"},
                ),
            ),
        )
        assert not api.SweepRunner._cacheable(result)
        deterministic = api.TaskResult(
            task_id="t", protocol="p", engine="explicit",
            obligations=(
                api.ObligationOutcome(
                    target="agreement",
                    queries=(api.QueryOutcome(query="q", verdict="unknown",
                                              limit_tripped="max_states"),),
                    side_conditions={"fair_termination": True},
                ),
            ),
        )
        assert api.SweepRunner._cacheable(deterministic)

    def test_unpicklable_task_runs_inline_in_parallel_sweep(self):
        from repro.protocols import cc85

        tasks = [
            api.VerificationTask(protocol="ks16", targets=("validity",)),
            api.VerificationTask(model=lambda: cc85.model_a(),
                                 valuation={"n": 4, "t": 1, "f": 1},
                                 targets=("validity",)),
            api.VerificationTask(protocol="cc85a", targets=("validity",)),
        ]
        report = api.SweepRunner(processes=2).run(tasks)
        assert [r.verdict for r in report.results] == ["holds"] * 3
        assert report.results[1].protocol.endswith("-custom")

    def test_custom_model_tasks_are_not_cached(self, tmp_path):
        from repro.protocols import cc85

        runner = api.SweepRunner(cache_dir=str(tmp_path))
        task = api.VerificationTask(model=cc85.model_a,
                                    valuation={"n": 4, "t": 1, "f": 1},
                                    targets=("validity",))
        assert runner.cache.key_for(task) is None
        report = runner.run([task, task])
        assert report.cache_hits == 0
        assert all(not r.cached for r in report.results)


class TestGraphStore:
    """The persistent state-graph store behind the sweep runner."""

    KWARGS = dict(protocols=("cc85a", "ks16"), targets=("validity",))

    def test_second_sweep_is_warm_from_disk_and_identical(self, tmp_path):
        from repro.counter.store import GraphStore, active_graph_store
        from repro.counter.system import clear_shared_caches

        clear_shared_caches()
        first = api.sweep(**self.KWARGS, graph_store=str(tmp_path))
        entries = GraphStore.entries(tmp_path)
        assert entries, "cold sweep must persist its explored graphs"
        # A fresh process is emulated by dropping every in-process
        # cache; the second sweep must warm itself purely from disk.
        clear_shared_caches()
        second = api.sweep(**self.KWARGS, graph_store=str(tmp_path))
        assert stable(first) == stable(second)
        # The store deactivates after each sweep (no leakage).
        assert active_graph_store() is None

    def test_store_composes_with_result_cache(self, tmp_path):
        from repro.counter.system import clear_shared_caches

        kwargs = dict(**self.KWARGS, cache_dir=str(tmp_path / "results"),
                      graph_store=str(tmp_path / "graphs"))
        first = api.sweep(**kwargs)
        clear_shared_caches()
        second = api.sweep(**kwargs)
        assert second.cache_hits == len(second.results)
        assert stable(first) == stable(second)

    def test_parallel_sharded_sweep_persists_and_replays(self, tmp_path):
        from repro.counter.store import GraphStore
        from repro.counter.system import clear_shared_caches

        kwargs = dict(protocols=("cc85a", "ks16"),
                      valuations=({"n": 4, "t": 1, "f": 1},
                                  {"n": 5, "t": 1, "f": 1}),
                      targets=("validity",), processes=2,
                      scheduling="sharded", graph_store=str(tmp_path))
        first = api.sweep(**kwargs)
        # 2 protocols x 2 valuations -> 4 per-valuation graph entries,
        # flushed by the pool workers (not this process).
        assert len(GraphStore.entries(tmp_path)) == 4
        clear_shared_caches()
        second = api.sweep(**kwargs)
        assert stable(first) == stable(second)

    def test_sqlite_backend_serves_a_whole_pool(self, tmp_path):
        # One single-file corpus, written by two pool workers and the
        # parent, re-read warm by a fresh sweep: the fleet-sharing
        # backend must stay bit-identical to the dir layout.
        from repro.counter.store import as_backend
        from repro.counter.system import clear_shared_caches

        spec = f"sqlite:{tmp_path / 'corpus.db'}"
        kwargs = dict(protocols=("cc85a", "ks16"),
                      valuations=({"n": 4, "t": 1, "f": 1},
                                  {"n": 5, "t": 1, "f": 1}),
                      targets=("validity",), processes=2,
                      scheduling="sharded", graph_store=spec)
        clear_shared_caches()
        first = api.sweep(**kwargs)
        assert len(as_backend(spec).keys()) == 4
        clear_shared_caches()
        second = api.sweep(**kwargs)
        assert stable(first) == stable(second)
        baseline = api.sweep(**{**kwargs, "graph_store": None})
        assert stable(first) == stable(baseline)

    def test_graph_store_dir_alias_still_accepted(self, tmp_path):
        from repro.counter.store import GraphStore

        runner = api.SweepRunner(graph_store_dir=str(tmp_path))
        assert runner.graph_store == str(tmp_path)
        report = runner.run(
            [api.VerificationTask(protocol="cc85a", targets=("validity",))]
        )
        assert report.results[0].verdict == "holds"
        assert GraphStore.entries(tmp_path)


class TestTaskMatrix:
    def test_matrix_order_is_protocol_major(self):
        tasks = api.task_matrix(protocols=("mmr14", "aby22"),
                                engines=("explicit", "parameterized"),
                                targets=("validity",))
        ids = [t.task_id for t in tasks]
        assert ids == [
            "mmr14[f=1,n=4,t=1]/validity@explicit",
            "mmr14[*]/validity@parameterized",
            "aby22[f=1,n=4,t=1]/validity@explicit",
            "aby22[*]/validity@parameterized",
        ]

    def test_parameterized_tasks_not_duplicated_per_valuation(self):
        # The schema checker covers all valuations; fanning it out per
        # valuation would rerun identical work under identical task ids.
        tasks = api.task_matrix(
            protocols=("cc85a",),
            valuations=({"n": 4, "t": 1, "f": 1}, {"n": 7, "t": 2, "f": 2}),
            engines=("explicit", "parameterized"),
            targets=("validity",),
        )
        ids = [t.task_id for t in tasks]
        assert ids == [
            "cc85a[f=1,n=4,t=1]/validity@explicit",
            "cc85a[*]/validity@parameterized",
            "cc85a[f=2,n=7,t=2]/validity@explicit",
        ]

    def test_default_matrix_covers_registry(self):
        tasks = api.task_matrix()
        assert len(tasks) == 8
        assert {t.protocol for t in tasks} == set(ALL_PROTOCOLS)


def _assert_matches_golden(report: api.RunReport) -> None:
    for result in report.results:
        assert not result.error
        for outcome in result.obligations:
            got = {
                "queries": [[q.query, q.verdict, q.states_explored]
                            for q in outcome.queries],
                "sides": dict(outcome.side_conditions),
            }
            assert got == GOLDEN[result.protocol][outcome.target]


@pytest.mark.slow_equivalence
class TestGoldenSweep:
    def test_full_4_process_sweep_reproduces_seed_verdicts(self):
        """Acceptance: all 8 protocols × all 3 targets at 4 processes."""
        report = api.sweep(processes=4)
        assert len(report.results) == 8
        _assert_matches_golden(report)
        restored = api.RunReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert restored == report

    def test_sharded_full_sweep_reproduces_seed_verdicts(self):
        """The warm sharded mode replays the seed verdicts bit-for-bit."""
        report = api.sweep(processes=4, scheduling="sharded")
        assert len(report.results) == 8
        _assert_matches_golden(report)

    @pytest.mark.parametrize("backend", ["dir", "sqlite"])
    def test_warm_from_disk_full_sweep_reproduces_seed_verdicts(
        self, tmp_path, backend
    ):
        """Acceptance: the persistent graph store is results-neutral.

        All 8 registry protocols, all 3 targets, through BOTH store
        backends: a cold sweep populates the store, every in-process
        cache is dropped (a fresh process as far as the engine can
        tell), and the warm-from-storage re-run must reproduce
        ``seed_verdicts.json`` bit-identically — verdicts *and*
        ``states_explored`` — before AND after a ``cache compact``.
        """
        from repro.counter.store import as_backend, compact_backend
        from repro.counter.system import clear_shared_caches

        spec = (str(tmp_path / "graphs") if backend == "dir"
                else f"sqlite:{tmp_path / 'graphs.db'}")
        clear_shared_caches()
        cold = api.sweep(processes=4, graph_store=spec)
        _assert_matches_golden(cold)
        assert as_backend(spec).keys(), "cold sweep persisted nothing"
        clear_shared_caches()
        warm = api.sweep(processes=4, graph_store=spec)
        assert len(warm.results) == 8
        _assert_matches_golden(warm)
        assert stable(cold) == stable(warm)
        stats = compact_backend(as_backend(spec))
        assert stats["errors"] == 0 and stats["corrupt_dropped"] == 0
        clear_shared_caches()
        compacted = api.sweep(processes=4, graph_store=spec)
        _assert_matches_golden(compacted)
        assert stable(cold) == stable(compacted)


@pytest.mark.slow_equivalence
class TestMultiValuationSweep:
    """Acceptance: 8 protocols × ≥3 valuations, 2 modes × 2 pool sizes.

    Every protocol contributes its seed (small) valuation plus two
    scaled ones (``n+1``, ``n+2``); the scaled tasks run the validity
    bundle under a deterministic ``max_states`` cap so the matrix stays
    tractable while still forcing every worker through cross-valuation
    program rebinding.  All four (scheduling, processes) combinations
    must agree bit-for-bit, and the seed-valuation slice must reproduce
    the golden validity verdicts.
    """

    def _tasks(self):
        from repro.protocols.registry import benchmark

        tasks = []
        for entry in benchmark():
            tasks.append(api.VerificationTask(
                protocol=entry.name, targets=("validity",)
            ))
            for delta in (1, 2):
                valuation = dict(entry.small_valuation)
                valuation["n"] += delta
                tasks.append(api.VerificationTask(
                    protocol=entry.name, valuation=valuation,
                    targets=("validity",),
                    limits=api.Limits(max_states=30_000),
                ))
        return tasks

    def test_three_valuations_identical_across_modes_and_pools(self):
        tasks = self._tasks()
        reports = [
            api.SweepRunner(processes=processes, scheduling=scheduling).run(tasks)
            for scheduling in ("flat", "sharded")
            for processes in (1, 4)
        ]
        stables = [stable(report) for report in reports]
        assert all(s == stables[0] for s in stables[1:])
        # The seed-valuation slice reproduces the golden verdicts.
        from repro.protocols.registry import by_name

        for result in reports[0].results:
            small = by_name(result.protocol).small_valuation
            if result.valuation != small:
                continue
            (outcome,) = result.obligations
            got = {
                "queries": [[q.query, q.verdict, q.states_explored]
                            for q in outcome.queries],
                "sides": dict(outcome.side_conditions),
            }
            assert got == GOLDEN[result.protocol]["validity"]
