"""Chaos suite: sweeps survive kills, hangs, I/O faults — bit-identically.

Every test runs a sweep under a deterministic
:class:`~repro.testing.faults.FaultPlan` and asserts the report is
*bit-identical* (modulo wall-clock fields) to the undisturbed run —
the whole point of the supervised pool: failures cost retries, never
verdicts.  Worker-side faults (kill/hang) are installed through the
pool's initializer; store/cache faults for inline runs are installed
in-process via :func:`repro.testing.faults.install`.
"""

import json
import sys

import pytest

from repro import api
from repro.testing import FaultPlan, faults
from tests.api.test_sweep import ALL_PROTOCOLS, GOLDEN, stable

#: Protocols with sub-second validity tasks — chaos tests kill and hang
#: these so retries stay cheap.
FAST = ("ks16", "cc85a", "fmr05")

#: Supervisor timeout for chaos sweeps: the slowest validity task
#: (rabin83) takes ~5s, so only injected hangs ever trip this.
TIMEOUT = 15.0

sweep_module = sys.modules["repro.api.sweep"]


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    # In-process fault installs must never outlive their test.
    yield
    faults.install(None)


@pytest.fixture(scope="module")
def clean_fast():
    """The undisturbed reference run for the FAST validity sweep."""
    return api.sweep(protocols=FAST, targets=("validity",), processes=1)


def by_protocol(report, protocol):
    return [r for r in report.results if r.protocol == protocol]


class TestWorkerKills:
    def test_killed_worker_is_transparent(self, tmp_path, clean_fast):
        plan = FaultPlan(scratch=str(tmp_path)).kill_task("ks16", nth=1)
        report = api.sweep(protocols=FAST, targets=("validity",),
                           processes=2, task_timeout=TIMEOUT,
                           fault_plan=plan)
        assert stable(report) == stable(clean_fast)
        assert report.worker_restarts >= 1
        (victim,) = by_protocol(report, "ks16")
        assert victim.attempts == 2
        assert all(r.attempts == 1 for r in report.results
                   if r.protocol != "ks16")

    @pytest.mark.parametrize("store", ["dir", "sqlite"])
    def test_killed_worker_with_graph_store(self, tmp_path, clean_fast,
                                            store):
        spec = (str(tmp_path / "graphs") if store == "dir"
                else f"sqlite:{tmp_path / 'graphs.db'}")
        plan = FaultPlan(scratch=str(tmp_path)).kill_task("cc85a", nth=1)
        report = api.sweep(protocols=FAST, targets=("validity",),
                           processes=2, task_timeout=TIMEOUT,
                           graph_store=spec, fault_plan=plan)
        assert stable(report) == stable(clean_fast)
        assert report.worker_restarts >= 1

    def test_mid_shard_kill_salvages_completed_tasks(self, tmp_path):
        matrix = dict(protocols=("cc85a", "ks16"),
                      valuations=({"n": 4, "t": 1, "f": 1},
                                  {"n": 5, "t": 1, "f": 1}),
                      targets=("validity",))
        clean = api.sweep(**matrix, processes=1)
        # The worker dies picking up cc85a's *second* valuation: the
        # first one's result is salvaged, only the rest of the shard
        # is reassigned.
        plan = FaultPlan(scratch=str(tmp_path)).kill_task("cc85a", nth=2)
        report = api.sweep(**matrix, processes=2, scheduling="sharded",
                           task_timeout=TIMEOUT, fault_plan=plan)
        assert stable(report) == stable(clean)
        assert report.worker_restarts >= 1
        first, second = by_protocol(report, "cc85a")
        assert first.attempts == 1  # salvaged, not recomputed
        assert second.attempts == 2


class TestHangsAndRetries:
    def test_hung_task_is_timed_out_and_retried(self, tmp_path, clean_fast):
        plan = FaultPlan(scratch=str(tmp_path)).hang_task(
            "fmr05", seconds=300.0, times=1)
        report = api.sweep(protocols=FAST, targets=("validity",),
                           processes=2, task_timeout=TIMEOUT,
                           fault_plan=plan)
        assert stable(report) == stable(clean_fast)
        (hung,) = by_protocol(report, "fmr05")
        assert hung.timed_out is True
        assert hung.attempts == 2
        assert report.worker_restarts >= 1

    def test_repeated_kills_retry_until_success(self, tmp_path, clean_fast):
        # Two consecutive kills on one task; the default policy's third
        # attempt lands it.
        plan = FaultPlan(scratch=str(tmp_path)).kill_task("ks16", times=2)
        report = api.sweep(protocols=FAST, targets=("validity",),
                           processes=2, task_timeout=TIMEOUT,
                           fault_plan=plan)
        assert stable(report) == stable(clean_fast)
        (victim,) = by_protocol(report, "ks16")
        assert victim.attempts == 3

    def test_exhausted_retries_degrade_to_error_result(self, tmp_path):
        # Every pickup of ks16 dies: attempts run out, the task is
        # recorded as a WorkerCrash error — and the sweep still
        # completes with every other verdict intact.
        plan = FaultPlan(scratch=str(tmp_path)).kill_task("ks16", times=0)
        report = api.sweep(protocols=FAST, targets=("validity",),
                           processes=2, task_timeout=TIMEOUT, retry=2,
                           fault_plan=plan)
        (victim,) = by_protocol(report, "ks16")
        assert victim.verdict == "error"
        assert victim.error.startswith("WorkerCrash")
        assert victim.attempts == 2
        for protocol in ("cc85a", "fmr05"):
            (result,) = by_protocol(report, protocol)
            assert result.verdict == "holds"
        assert report.verdict == "error"


class TestStoreAndCacheFaults:
    """I/O faults at the persistence boundaries (inline: hooks fire here)."""

    def test_cache_read_faults_are_misses_not_crashes(self, tmp_path,
                                                      clean_fast):
        cache_dir = str(tmp_path / "cache")
        first = api.sweep(protocols=FAST, targets=("validity",),
                          cache_dir=cache_dir)
        faults.install(FaultPlan(scratch=str(tmp_path))
                       .break_io("result_cache.get", times=0))
        second = api.sweep(protocols=FAST, targets=("validity",),
                           cache_dir=cache_dir)
        assert second.cache_hits == 0  # every read failed -> recompute
        assert stable(second) == stable(first) == stable(clean_fast)

    def test_cache_write_faults_cost_entries_not_results(self, tmp_path,
                                                         clean_fast):
        faults.install(FaultPlan(scratch=str(tmp_path))
                       .break_io("result_cache.put", times=0))
        runner = api.SweepRunner(cache_dir=str(tmp_path / "cache"))
        report = runner.run(api.task_matrix(protocols=FAST,
                                            targets=("validity",)))
        assert stable(report) == stable(clean_fast)
        assert runner.cache.put_errors == len(FAST)

    def test_graph_store_io_faults_are_results_neutral(self, tmp_path,
                                                       clean_fast):
        faults.install(FaultPlan(scratch=str(tmp_path))
                       .break_io("graph_store.flush", times=0)
                       .break_io("graph_store.load", times=0))
        report = api.sweep(protocols=FAST, targets=("validity",),
                           graph_store=str(tmp_path / "graphs"))
        assert stable(report) == stable(clean_fast)

    def test_corrupted_segment_is_a_cold_miss(self, tmp_path, clean_fast):
        spec = str(tmp_path / "graphs")
        # First sweep flushes corrupted segments (checksums broken)...
        faults.install(FaultPlan(scratch=str(tmp_path))
                       .corrupt_segment(times=0))
        first = api.sweep(protocols=FAST, targets=("validity",),
                          graph_store=spec)
        faults.install(None)
        # ... which the next sweep must reject on load and recompute.
        second = api.sweep(protocols=FAST, targets=("validity",),
                           graph_store=spec)
        assert stable(first) == stable(second) == stable(clean_fast)


class TestResume:
    TASKS = dict(protocols=FAST, targets=("validity",))

    def _counting_run_task(self, monkeypatch):
        calls = []
        original = sweep_module.run_task

        def wrapper(task):
            calls.append(task.protocol_name)
            return original(task)

        monkeypatch.setattr(sweep_module, "run_task", wrapper)
        return calls

    def test_resume_reruns_only_unjournaled_tasks(self, tmp_path,
                                                  monkeypatch, clean_fast):
        cache_dir = tmp_path / "cache"
        first = api.sweep(**self.TASKS, cache_dir=str(cache_dir))
        journal = cache_dir / api.SweepRunner.JOURNAL_NAME
        # Simulate dying before the last task: drop its journal record,
        # and clear the result cache so only the journal can resume.
        lines = journal.read_text().splitlines()
        dropped = json.loads(lines[-1])
        journal.write_text("\n".join(lines[:-1]) + "\n")
        for entry in cache_dir.glob("*.json"):
            entry.unlink()
        calls = self._counting_run_task(monkeypatch)
        resumed = api.sweep(**self.TASKS, cache_dir=str(cache_dir),
                            resume=True)
        assert resumed.resumed == len(FAST) - 1
        assert calls == [dropped["result"]["protocol"]]
        assert stable(resumed) == stable(first) == stable(clean_fast)

    def test_resume_without_flag_reruns_everything(self, tmp_path,
                                                   monkeypatch):
        cache_dir = tmp_path / "cache"
        api.sweep(**self.TASKS, cache_dir=str(cache_dir))
        for entry in cache_dir.glob("*.json"):
            entry.unlink()
        calls = self._counting_run_task(monkeypatch)
        report = api.sweep(**self.TASKS, cache_dir=str(cache_dir))
        assert report.resumed == 0
        assert sorted(calls) == sorted(FAST)

    def test_resume_ignores_a_different_sweeps_journal(self, tmp_path,
                                                       monkeypatch):
        cache_dir = tmp_path / "cache"
        api.sweep(**self.TASKS, cache_dir=str(cache_dir))
        for entry in cache_dir.glob("*.json"):
            entry.unlink()
        calls = self._counting_run_task(monkeypatch)
        # Different task list -> different sweep digest -> no replay.
        report = api.sweep(protocols=("ks16", "cc85a"),
                           targets=("validity",),
                           cache_dir=str(cache_dir), resume=True)
        assert report.resumed == 0
        assert sorted(calls) == ["cc85a", "ks16"]

    def test_error_records_rerun_on_resume(self, tmp_path, monkeypatch):
        tasks = [
            api.VerificationTask(protocol="ks16", targets=("validity",)),
            api.VerificationTask(protocol="nope", targets=("validity",)),
        ]
        cache_dir = tmp_path / "cache"
        first = api.SweepRunner(cache_dir=str(cache_dir)).run(tasks)
        assert first.results[1].verdict == "error"
        for entry in cache_dir.glob("*.json"):
            entry.unlink()
        calls = self._counting_run_task(monkeypatch)
        second = api.SweepRunner(cache_dir=str(cache_dir),
                                 resume=True).run(tasks)
        # The good task replays from the journal; the error record is
        # not replayable — resume exists to finish sweeps, not to pin
        # their failures.
        assert second.resumed == 1
        assert calls == ["nope"]
        assert second.results[1].verdict == "error"

    def test_resume_needs_a_journal(self):
        from repro.errors import CheckError

        with pytest.raises(CheckError, match="journal"):
            api.SweepRunner(resume=True)


class TestFullBenchmarkChaos:
    def test_chaos_sweep_reproduces_seed_verdicts(self, tmp_path):
        """The acceptance sweep: all 8 protocols under kills + a hang.

        Three workers are killed mid-task and one task hangs past the
        supervisor timeout; the sweep must complete without an
        exception and report verdicts bit-identical to the seed's
        golden file.
        """
        plan = (FaultPlan(scratch=str(tmp_path))
                .kill_task("mmr14", nth=1)
                .kill_task("rabin83", nth=1)
                .kill_task("miller18", nth=1)
                .hang_task("ks16", seconds=300.0, times=1))
        # Double the usual chaos timeout: under a loaded machine the
        # slower protocols must never trip it *naturally* — only the
        # injected hang may (attempts are >= not == for the same
        # reason: an incidental load-induced retry is legitimate).
        report = api.sweep(protocols=ALL_PROTOCOLS, targets=("validity",),
                           processes=4, task_timeout=2 * TIMEOUT,
                           fault_plan=plan)
        assert report.worker_restarts >= 4  # 3 kills + 1 timeout kill
        recovered = {r.protocol: r for r in report.results}
        for protocol in ("mmr14", "rabin83", "miller18", "ks16"):
            assert recovered[protocol].attempts >= 2
        assert recovered["ks16"].timed_out is True
        for result in report.results:
            assert not result.error
            (outcome,) = result.obligations
            got = {
                "queries": [[q.query, q.verdict, q.states_explored]
                            for q in outcome.queries],
                "sides": dict(outcome.side_conditions),
            }
            assert got == GOLDEN[result.protocol]["validity"]
