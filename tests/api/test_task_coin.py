"""The task layer's coin identity contracts.

The load-bearing rule: **the perfect coin is not an identity axis**.
A coin-free task, a ``coin=None`` task and a ``coin="perfect"`` task
are one and the same — same ``task_id``, same ``journal_key`` /
``dedup_key``, and byte-identical JSON wire format and cache payload
as before CoinSpecs existed (pinned here against frozen blobs), so
every historical journal, result cache and golden recording stays
valid.  A non-default coin joins the identity everywhere at once.
"""

import json
from fractions import Fraction

import pytest

from repro import api
from repro.core.coinspec import BiasedCoin, DeltaFailingCoin, PerfectCoin
from repro.errors import CheckError
from repro.protocols import naive_voting
from repro.protocols.registry import by_name, names


#: The pre-CoinSpec wire format of the default mmr14 task, frozen as
#: bytes: if this pin breaks, deployed journals and caches break too.
COIN_FREE_BLOB = (
    '{"protocol": "mmr14", "targets": ["agreement", "validity", '
    '"termination"], "engine": "explicit", "limits": {"max_states": null, '
    '"max_nodes": null, "max_seconds": null}}'
)


def _default_task(**overrides):
    kwargs = dict(protocol="mmr14",
                  targets=("agreement", "validity", "termination"))
    kwargs.update(overrides)
    return api.VerificationTask(**kwargs)


class TestCoinFreeByteIdentity:
    def test_wire_format_is_byte_identical_to_pre_coinspec(self):
        assert json.dumps(_default_task().to_dict()) == COIN_FREE_BLOB

    def test_task_id_keeps_historical_format(self):
        task = _default_task()
        assert task.task_id == (
            "mmr14[f=1,n=4,t=1]/agreement+validity+termination@explicit"
        )

    def test_explicit_perfect_coin_is_the_same_identity(self):
        plain = _default_task()
        for perfect in ("perfect", PerfectCoin()):
            coined = _default_task(coin=perfect)
            assert coined.coin is None
            assert coined.task_id == plain.task_id
            assert coined.dedup_key == plain.dedup_key
            assert json.dumps(coined.to_dict()) == COIN_FREE_BLOB
            assert coined.cache_payload() == plain.cache_payload()


class TestCoinedIdentity:
    def test_coin_threads_through_every_key(self):
        plain = _default_task()
        coined = _default_task(coin="biased:1/4")
        assert coined.coin == BiasedCoin(Fraction(1, 4))
        assert coined.task_id == (
            "mmr14[f=1,n=4,t=1;coin=biased:1/4]"
            "/agreement+validity+termination@explicit"
        )
        assert coined.dedup_key != plain.dedup_key
        assert coined.journal_key != plain.journal_key
        assert coined.to_dict()["coin"] == "biased:1/4"
        assert coined.cache_payload()["coin"] == "biased:1/4"

    def test_wire_round_trip(self):
        coined = _default_task(coin=DeltaFailingCoin(Fraction(1, 8)))
        rebuilt = api.VerificationTask.from_dict(coined.to_dict())
        assert rebuilt.coin == coined.coin
        assert rebuilt.task_id == coined.task_id
        assert rebuilt.dedup_key == coined.dedup_key

    def test_with_coin(self):
        plain = _default_task()
        coined = plain.with_coin("failing:1/8")
        assert coined.coin == DeltaFailingCoin(Fraction(1, 8))
        assert coined.with_coin(None).task_id == plain.task_id

    def test_models_are_built_under_the_coin(self):
        coined = _default_task(coin="biased:1/4")
        for target in ("agreement", "termination"):
            model = coined.model_for_target(target)
            toss = next(r for r in model.coin.rules if r.name == "rb")
            assert dict(toss.branches)["T1"] == Fraction(1, 4)
        # termination still runs on the refined model
        assert coined.model_for_target("termination").name == "mmr14-refined"

    def test_custom_model_with_coin_rejected(self):
        with pytest.raises(CheckError, match="registry tasks"):
            api.VerificationTask(model=naive_voting.model(),
                                 targets=("agreement",), coin="biased:1/4")

    def test_custom_model_with_perfect_coin_allowed(self):
        # Normalizes away before the registry-only check can object.
        task = api.VerificationTask(model=naive_voting.model(),
                                    targets=("agreement",), coin="perfect")
        assert task.coin is None


class TestMatrixCoinAxis:
    def test_default_matrix_is_unchanged(self):
        matrix = api.task_matrix()
        assert len(matrix) == 8
        assert all(task.coin is None for task in matrix)

    def test_coin_axis_orders_protocol_major_then_coin(self):
        matrix = api.task_matrix(
            protocols=("cc85a", "ks16"),
            coins=(None, "biased:1/4"),
            engines=("explicit", "parameterized"),
        )
        ids = [task.task_id for task in matrix]
        assert ids == [
            "cc85a[f=1,n=4,t=1]/agreement+validity+termination@explicit",
            "cc85a[*]/agreement+validity+termination@parameterized",
            "cc85a[f=1,n=4,t=1;coin=biased:1/4]"
            "/agreement+validity+termination@explicit",
            "cc85a[*;coin=biased:1/4]"
            "/agreement+validity+termination@parameterized",
            "ks16[f=1,n=4,t=1]/agreement+validity+termination@explicit",
            "ks16[*]/agreement+validity+termination@parameterized",
            "ks16[f=1,n=4,t=1;coin=biased:1/4]"
            "/agreement+validity+termination@explicit",
            "ks16[*;coin=biased:1/4]"
            "/agreement+validity+termination@parameterized",
        ]

    def test_sweep_runs_the_coin_axis(self):
        report = api.sweep(
            protocols=("cc85a",),
            coins=(None, "disagreeing:1/8"),
            targets=("agreement",),
            limits=api.Limits(max_states=20_000),
        )
        verdicts = {r.task_id: r.verdict for r in report.results}
        assert verdicts == {
            "cc85a[f=1,n=4,t=1]/agreement@explicit": "holds",
            "cc85a[f=1,n=4,t=1;coin=disagreeing:1/8]/agreement@explicit":
                "violated",
        }

    def test_verify_facade_accepts_coin(self):
        result = api.verify("cc85a", target="agreement", coin="biased:1/4",
                            limits=api.Limits(max_states=20_000))
        assert result.verdict == "holds"
        assert "coin=biased:1/4" in result.task_id


class TestRegistryErrors:
    def test_unknown_protocol_error_lists_sorted_names(self):
        with pytest.raises(KeyError) as excinfo:
            by_name("nope")
        message = str(excinfo.value)
        assert ", ".join(names()) in message
        assert list(names()) == sorted(names())

    def test_registry_factories_accept_coin(self):
        for name in names():
            entry = by_name(name)
            model = entry.build_model(coin="biased:1/4")
            refined = entry.verification_model(coin="biased:1/4")
            assert model.name
            assert refined.name
