"""Differential suite: frontier-batched vs scalar successor expansion.

The batch engine (:mod:`repro.counter.batch`) promises bit-identical
results to the scalar path — same verdicts, same ``states_explored``
(including ``max_states`` early exits), same flattened action order.
This module pins that contract from two sides:

* **group level** — for every registry protocol and every fuzz seed of
  ``test_differential.py``, a scalar system's ``successor_groups`` and
  a batch-expanded system's pre-filled ``_succ_cache`` must hold the
  same group tuples over several BFS levels, and flattening them must
  reproduce ``enabled_actions(..., include_stutters=False)``;
* **end to end** — ``api.verify`` under the pinned ``explicit-batch``
  and ``explicit-scalar`` engines (cold caches each) must return
  stable-identical reports on all 8 registry protocols and the 30 fuzz
  models, plus a deliberately tight ``max_states`` budget where the
  early exit must trip at the very same state count.
"""

import pytest

from repro import api
from repro.counter.batch import batch_available, resolve_expansion
from repro.counter.system import CounterSystem, clear_shared_caches
from repro.errors import SemanticsError
from repro.protocols.registry import benchmark

from tests.checker.test_differential import (
    LIMITS,
    SEEDS,
    TARGETS,
    _stable,
    random_model,
    small_valuation,
)

pytestmark = pytest.mark.skipif(
    not batch_available(), reason="numpy unavailable: no batch engine"
)

REGISTRY = tuple(entry.name for entry in benchmark())

#: Bounded registry budget: small enough that the slow protocols stay
#: fast *and* several of them trip max_states — the early-exit state
#: counts must match exactly between the engines.
REGISTRY_LIMITS = api.Limits(max_states=12_000)


def _flat(groups):
    return [
        (action.rule, action.round, action.branch, succ.data)
        for group in groups
        for action, succ in group
    ]


def _group_differential(model, valuation, levels=3, fanout_cap=60):
    """Batch-expand BFS levels; compare groups against a scalar twin."""
    scalar = CounterSystem(model, valuation)
    batched = CounterSystem(model, valuation)
    expander = batched.batch_expander()
    assert expander is not None
    frontier = list(batched.initial_configs())
    scalar_frontier = list(scalar.initial_configs())
    assert [c.data for c in frontier] == [c.data for c in scalar_frontier]
    for _level in range(levels):
        expander.expand_frontier(iter(frontier))
        next_frontier, seen = [], set()
        for batch_config, scalar_config in zip(frontier, scalar_frontier):
            batch_groups = batched._succ_cache.get(batch_config)
            assert batch_groups is not None, "expander left a cache hole"
            scalar_groups = scalar.successor_groups(scalar_config)
            assert _flat(batch_groups) == _flat(scalar_groups)
            # Flattened group order == the derandomized action order.
            actions = scalar.enabled_actions(
                scalar_config, include_stutters=False
            )
            assert [
                (a.rule, a.round, a.branch) for a in actions
            ] == [
                (a.rule, a.round, a.branch)
                for group in batch_groups
                for a, _succ in group
            ]
            for group in batch_groups:
                for _action, successor in group:
                    if successor not in seen:
                        seen.add(successor)
                        next_frontier.append(successor)
        frontier = next_frontier[:fanout_cap]
        scalar_frontier = [scalar.intern(c) for c in frontier]


def _verify_both(limits, **kwargs):
    """Cold batch run vs cold scalar run of the same task."""
    clear_shared_caches()
    batched = api.verify(engine="explicit-batch", limits=limits, **kwargs)
    clear_shared_caches()
    scalar = api.verify(engine="explicit-scalar", limits=limits, **kwargs)
    clear_shared_caches()
    return batched, scalar


class TestGroupDifferential:
    @pytest.mark.parametrize("name", REGISTRY)
    def test_registry_protocol_groups(self, name):
        entry = next(e for e in benchmark() if e.name == name)
        _group_differential(entry.model(), dict(entry.small_valuation))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fuzz_model_groups(self, seed):
        model = random_model(seed)
        _group_differential(model, small_valuation(model))


class TestEndToEndDifferential:
    @pytest.mark.parametrize("name", REGISTRY)
    def test_registry_protocol_reports(self, name):
        batched, scalar = _verify_both(
            REGISTRY_LIMITS, protocol=name, targets=TARGETS
        )
        assert batched.engine == "explicit-batch"
        assert scalar.engine == "explicit-scalar"
        assert _stable(batched) == _stable(scalar)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fuzz_model_reports(self, seed):
        batched, scalar = _verify_both(
            LIMITS,
            model=random_model(seed),
            valuation=small_valuation(random_model(seed)),
            targets=TARGETS,
        )
        assert _stable(batched) == _stable(scalar)

    def test_max_states_early_exit_is_bit_identical(self):
        # A budget far below mmr14's reach space: both engines must
        # trip the limit after exploring the very same prefix.
        batched, scalar = _verify_both(
            api.Limits(max_states=500),
            protocol="mmr14",
            targets=("agreement",),
        )
        stable = _stable(batched)
        assert stable == _stable(scalar)
        tripped = [
            query
            for _target, queries, _sides in stable
            for query in queries
            if query[3] == "max_states"
        ]
        assert tripped, "budget of 500 states unexpectedly sufficed"


class TestSelectionKnobs:
    def test_unknown_expansion_rejected(self):
        with pytest.raises(SemanticsError):
            resolve_expansion("simd")

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_BATCH", "0")
        assert resolve_expansion(None) == "scalar"
        monkeypatch.delenv("REPRO_ENGINE_BATCH")
        assert resolve_expansion(None) == "batch"
        # Explicit pins beat the process default.
        monkeypatch.setenv("REPRO_ENGINE_BATCH", "0")
        assert resolve_expansion("batch") == "batch"
        assert resolve_expansion("scalar") == "scalar"


# ----------------------------------------------------------------------
# Non-uniform lotteries: the CoinSpec axis through the batch engine
# ----------------------------------------------------------------------

from tests.checker.test_differential import (  # noqa: E402
    COIN_LIMITS,
    COIN_PROTOCOLS,
    COIN_SEEDS,
    COIN_TARGETS,
    random_coin_spec,
)


class TestCoinLotteryDifferential:
    """Batch ≡ scalar must survive generalized coin lotteries.

    The perfect coin compiles to a two-branch 1/2-1/2 toss; random
    CoinSpecs give two- and three-branch lotteries with non-dyadic
    probabilities (and, for disagreeing coins, a doubled coin-variable
    space plus twinned process rules).  Both the per-config successor
    groups and the end-to-end reports must stay bit-identical between
    the frontier-batched and scalar expansion paths.
    """

    @pytest.mark.parametrize("name", COIN_PROTOCOLS)
    @pytest.mark.parametrize("seed", COIN_SEEDS[:4])
    def test_groups_identical_under_random_coins(self, name, seed):
        entry = next(e for e in benchmark() if e.name == name)
        model = entry.build_model(coin=random_coin_spec(seed))
        _group_differential(model, dict(entry.small_valuation))

    @pytest.mark.parametrize("name", COIN_PROTOCOLS)
    @pytest.mark.parametrize("seed", COIN_SEEDS)
    def test_reports_identical_under_random_coins(self, name, seed):
        batched, scalar = _verify_both(
            COIN_LIMITS, protocol=name, targets=COIN_TARGETS,
            coin=random_coin_spec(seed),
        )
        assert _stable(batched) == _stable(scalar)

    def test_three_branch_lottery_early_exit_identical(self):
        # The failing coin's three-branch toss under a tight budget:
        # both paths must trip max_states on the very same prefix.
        batched, scalar = _verify_both(
            api.Limits(max_states=400),
            protocol="cc85a", targets=("agreement",), coin="failing:1/8",
        )
        stable = _stable(batched)
        assert stable == _stable(scalar)
        assert any(
            query[3] == "max_states"
            for _target, queries, _sides in stable
            for query in queries
        ), "budget of 400 states unexpectedly sufficed"
