"""Golden coin-matrix verdicts: registry + teaching models × CoinSpecs.

``data/coin_verdicts.json`` was recorded by the explicit checker at
``max_states=150_000`` over three protocols under the coin models the
CoinSpec layer introduces — per query the verdict AND
``states_explored`` (exploration-order sensitive), plus the fairness
side conditions, exactly like ``seed_verdicts.json``.  What it pins:

* **mmr14** × {perfect, biased:1/4, failing:1/8} — the biased coin is
  *bit-identical* to the perfect one (a lottery reweighting never
  changes the explicit reach support), while the failing coin grows the
  state space (the silent branch is a new behaviour) without rescuing
  or breaking any verdict — the §II termination counterexample
  survives;
* **cc85a** × {perfect, biased:1/4, failing:1/8, disagreeing:1/8} —
  the split-view coin *flips agreement to violated*: on a split round
  both coin views are published and mixed-view processes adopt
  different values (the README's headline example);
* **naive-voting** × all three — the protocol uses no coin, so every
  spec yields identical observations (the `coin=` keyword is uniform
  across factories, not semantics-bearing where no coin exists).

``mmr14`` cells explore 5-figure state counts and are gated behind
``--run-slow-equivalence`` like the seed fixture's slow protocols.
"""

import json
from pathlib import Path

import pytest

from repro.checker.explicit import ExplicitChecker
from repro.counter.system import clear_shared_caches
from repro.protocols import naive_voting
from repro.protocols.registry import by_name
from repro.spec.obligations import obligations_for

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "coin_verdicts.json").read_text()
)

COINS = ("perfect", "biased:1/4", "failing:1/8")
TARGETS = ("agreement", "validity", "termination")


def _observed(model, valuation, target):
    clear_shared_caches()
    checker = ExplicitChecker(model, valuation, max_states=150_000)
    report = checker.check_obligations(obligations_for(checker.model, target))
    return {
        "queries": [
            [r.query, r.verdict, r.states_explored] for r in report.results
        ],
        "sides": dict(report.side_conditions),
    }


def _registry_observed(name, coin, target):
    entry = by_name(name)
    model = (
        entry.verification_model(coin=coin)
        if target == "termination"
        else entry.build_model(coin=coin)
    )
    return _observed(model, entry.small_valuation, target)


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize(
    "coin", ("perfect", "biased:1/4", "failing:1/8", "disagreeing:1/8")
)
def test_cc85a_matches_recording(coin, target):
    assert _registry_observed("cc85a", coin, target) == \
        GOLDEN["cc85a"][coin][target]


@pytest.mark.parametrize("target", ("agreement", "validity"))
@pytest.mark.parametrize("coin", COINS)
def test_naive_voting_matches_recording(coin, target):
    observed = _observed(naive_voting.model(coin=coin), {"n": 3, "f": 1},
                         target)
    assert observed == GOLDEN["naive-voting"][coin][target]


@pytest.mark.slow_equivalence
@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("coin", COINS)
def test_mmr14_matches_recording_slow(coin, target):
    assert _registry_observed("mmr14", coin, target) == \
        GOLDEN["mmr14"][coin][target]


def test_biased_coin_is_support_invisible():
    """A pure lottery reweighting never changes explicit observations."""
    for target in TARGETS:
        assert GOLDEN["cc85a"]["biased:1/4"][target] == \
            GOLDEN["cc85a"]["perfect"][target]
        assert GOLDEN["mmr14"]["biased:1/4"][target] == \
            GOLDEN["mmr14"]["perfect"][target]


def test_failing_coin_grows_the_state_space():
    perfect = GOLDEN["cc85a"]["perfect"]["agreement"]["queries"]
    failing = GOLDEN["cc85a"]["failing:1/8"]["agreement"]["queries"]
    assert [q[1] for q in perfect] == [q[1] for q in failing]  # verdicts
    assert all(f[2] > p[2] for p, f in zip(perfect, failing))  # states

def test_disagreeing_coin_breaks_cc85a_agreement():
    verdicts = [q[1] for q in
                GOLDEN["cc85a"]["disagreeing:1/8"]["agreement"]["queries"]]
    assert verdicts == ["violated", "violated"]


def test_coinless_protocol_is_coin_invariant():
    for coin in COINS[1:]:
        assert GOLDEN["naive-voting"][coin] == GOLDEN["naive-voting"]["perfect"]
