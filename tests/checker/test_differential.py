"""Differential fuzzing: ExplicitEngine vs ParameterizedEngine.

``test_engine_equivalence.py`` pins the explicit engine to the seed
recording on the 8 registry protocols; this module extends the net
beyond the registry with ~30 *seeded random* threshold-automaton
models, checked through ``repro.api`` on both engines.  The oracle is
the semantic relation between the engines (the parameterized checker
quantifies over **all** admissible valuations, the explicit checker
fixes one):

* a parametric ``holds`` on a query implies an explicit ``holds`` for
  that query at *every* admissible valuation — we check the model's
  smallest interesting one;
* a parametric ``violated`` comes with a replayed counterexample at a
  concrete valuation — the explicit checker at *that* valuation must
  reproduce the violation;
* ``unknown`` (budget) constrains nothing, but the corpus must not
  degenerate: the seeds are pinned so both verdict classes appear.

The generated models are naive-voting-shaped (two initial values, an
echo chain, threshold-guarded decisions) with randomized chain depth,
guard thresholds, resilience condition and optional cross rules —
small enough that every case decides in well under a second.

A second suite replays one fuzz case cold vs warm-from-store through
each :class:`~repro.counter.store.GraphStore` backend and asserts the
reports are bit-identical — the store must stay results-neutral on
models it has never seen in any registry.
"""

import random

import pytest

from repro import api
from repro.core.builder import AutomatonBuilder
from repro.core.environment import ge, gt, standard_environment
from repro.core.expression import params
from repro.core.system import SystemModel
from repro.counter.store import (
    active_graph_store,
    activate_graph_store,
    deactivate_graph_store,
)
from repro.counter.system import clear_shared_caches

SEEDS = tuple(range(30))

#: Query budgets: generously above what these tiny models need, so an
#: ``unknown`` is a generator bug rather than routine noise.
LIMITS = api.Limits(max_states=60_000, max_nodes=30_000)
TARGETS = ("agreement", "validity")


def random_model(seed: int) -> SystemModel:
    """A seeded random small threshold-automaton model.

    Shape: ``I0/I1 -> S (-> T0 -> T1) -> D0/D1`` with vote counters
    ``v0``/``v1``; the rng draws the echo-chain depth, per-hop guards,
    the two decision thresholds, an optional *cross* rule (deciding a
    value off the other value's counter — an injected disagreement
    hazard), and the resilience condition ``n > 2f`` or ``n > 3f``.
    Deterministic per seed, including location/rule names.
    """
    rng = random.Random(seed)
    n, f = params("n f")
    builder = AutomatonBuilder(f"fuzz{seed}")
    builder.shared("v0", "v1")
    builder.initial("I0", value=0)
    builder.initial("I1", value=1)
    chain = ["S"] + [f"T{i}" for i in range(rng.randint(0, 2))]
    for name in chain:
        builder.location(name)
    builder.final("D0", value=0, decision=True)
    builder.final("D1", value=1, decision=True)
    v0, v1 = builder.var("v0"), builder.var("v1")

    builder.rule("r1", "I0", chain[0], update={"v0": 1})
    builder.rule("r2", "I1", chain[0], update={"v1": 1})
    rule_no = 3
    hop_guards = (None, v0 + v1 >= n - 2 * f, v0 + v1 >= f + 1)
    for source, target in zip(chain, chain[1:]):
        builder.rule(f"r{rule_no}", source, target,
                     guard=hop_guards[rng.randrange(len(hop_guards))])
        rule_no += 1
    thresholds = (
        lambda v: v + v >= n + 1 - 2 * f,  # majority incl. Byzantine votes
        lambda v: v >= n - 2 * f,
        lambda v: v >= f + 1,
        lambda v: v + v >= n - f,
    )
    last = chain[-1]
    builder.rule(f"r{rule_no}", last, "D0",
                 guard=thresholds[rng.randrange(len(thresholds))](v0))
    rule_no += 1
    builder.rule(f"r{rule_no}", last, "D1",
                 guard=thresholds[rng.randrange(len(thresholds))](v1))
    rule_no += 1
    if rng.random() < 0.25:
        # Cross rule: decide 0 off the *other* counter — a seeded
        # disagreement hazard the engines must judge identically.
        builder.rule(f"r{rule_no}", last, "D0", guard=v1 >= f + 1)
    resilience = rng.choice((2, 3))
    environment = standard_environment(
        resilience=(gt(n, resilience * f), ge(f, 0)),
        parameters="n f",
        num_processes=n - f,
        num_coins=0,
    )
    return SystemModel(
        name=f"fuzz{seed}",
        environment=environment,
        process=builder.build(check="canonical"),
        coin=None,
        category=None,
        description=f"differential fuzz model, seed {seed}",
    )


def small_valuation(model: SystemModel) -> dict:
    """The smallest admissible valuation with >= 2 processes, faults first."""
    fallback = None
    for valuation in model.environment.iter_admissible(6):
        if valuation["n"] - valuation["f"] < 2:
            continue
        if valuation["f"] >= 1:
            return valuation
        if fallback is None:
            fallback = valuation
    assert fallback is not None, f"{model.name}: no admissible valuation"
    return fallback


def _queries(result: api.TaskResult, target: str):
    return {q.query: q for q in result.outcome(target).queries}


_case_cache = {}


def run_case(seed: int):
    """Both engines' results for one seed (memoised across tests)."""
    if seed not in _case_cache:
        explicit = api.verify(
            model=random_model(seed),
            valuation=small_valuation(random_model(seed)),
            targets=TARGETS, limits=LIMITS,
        )
        parameterized = api.verify(
            model=random_model(seed), engine="parameterized",
            targets=TARGETS, limits=LIMITS,
        )
        _case_cache[seed] = (explicit, parameterized)
    return _case_cache[seed]


class TestDifferentialVerdictAgreement:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_engines_agree(self, seed):
        explicit, parameterized = run_case(seed)
        assert not explicit.error and not parameterized.error
        for target in TARGETS:
            explicit_queries = _queries(explicit, target)
            for name, query in _queries(parameterized, target).items():
                if query.verdict == "holds":
                    # Parametric holds covers every valuation,
                    # including the explicitly-checked one.
                    assert explicit_queries[name].verdict == "holds", (
                        f"{target}/{name}: parameterized holds but "
                        f"explicit says {explicit_queries[name].verdict}"
                    )
                elif query.verdict == "violated":
                    # The replayed witness names a concrete valuation;
                    # the explicit checker there must reproduce it.
                    witness = query.counterexample
                    assert witness is not None and witness.valuation
                    replay = api.verify(
                        model=random_model(seed),
                        valuation=witness.valuation,
                        targets=(target,), limits=LIMITS,
                    )
                    assert _queries(replay, target)[name].verdict == \
                        "violated", (
                            f"{target}/{name}: witness at "
                            f"{witness.valuation} did not reproduce"
                        )
                else:
                    pytest.fail(
                        f"{target}/{name}: unexpected parameterized "
                        f"unknown ({query.detail}) on a tiny model"
                    )

    def test_corpus_covers_both_verdict_classes(self):
        verdicts = set()
        for seed in SEEDS:
            _explicit, parameterized = run_case(seed)
            for target in TARGETS:
                verdicts |= {
                    q.verdict for q in parameterized.outcome(target).queries
                }
        assert "holds" in verdicts and "violated" in verdicts, (
            f"degenerate fuzz corpus: only {verdicts} observed"
        )


def _stable(result: api.TaskResult) -> list:
    return [
        [
            outcome.target,
            [[q.query, q.verdict, q.states_explored, q.limit_tripped]
             for q in outcome.queries],
            dict(outcome.side_conditions),
        ]
        for outcome in result.obligations
    ]


class TestWarmStoreFuzzCase:
    """One fuzz case, cold vs warm-from-store, per backend."""

    SEED = 7  # a seed whose agreement query is genuinely violated

    @pytest.fixture(autouse=True)
    def _no_leaked_store(self):
        previous = active_graph_store()
        deactivate_graph_store()
        yield
        deactivate_graph_store(previous)
        clear_shared_caches()

    @pytest.fixture(params=["dir", "sqlite"])
    def backend_spec(self, request, tmp_path):
        if request.param == "dir":
            return str(tmp_path / "graphs")
        return f"sqlite:{tmp_path / 'graphs.db'}"

    def test_cold_vs_warm_reports_identical(self, backend_spec):
        model_factory = lambda: random_model(self.SEED)  # noqa: E731
        valuation = small_valuation(model_factory())
        kwargs = dict(valuation=valuation, targets=TARGETS, limits=LIMITS)

        clear_shared_caches()
        cold = api.verify(model=model_factory(), **kwargs)

        clear_shared_caches()
        previous = activate_graph_store(backend_spec)
        try:
            api.verify(model=model_factory(), **kwargs)
            from repro.counter.system import flush_shared_graphs

            flush_shared_graphs()
            store = active_graph_store()
            assert store.saves >= 1, "fuzz graph was never persisted"
            clear_shared_caches()
            hits_before = store.load_hits
            warm = api.verify(model=model_factory(), **kwargs)
            assert store.load_hits > hits_before, "store was never hit"
        finally:
            deactivate_graph_store(previous)

        assert _stable(warm) == _stable(cold)


# ----------------------------------------------------------------------
# Random CoinSpec draws: lottery-reweighting differentials
# ----------------------------------------------------------------------

from fractions import Fraction  # noqa: E402

from repro.core.coinspec import (  # noqa: E402
    BiasedCoin,
    DeltaFailingCoin,
    DisagreeingCoin,
    parse_coin_spec,
)

COIN_SEEDS = tuple(range(8))

#: Protocols cheap enough to explore exhaustively under every coin
#: (the slow registry protocols are covered by the golden coin matrix).
COIN_PROTOCOLS = ("cc85a", "ks16")

COIN_TARGETS = ("agreement", "validity")
COIN_LIMITS = api.Limits(max_states=30_000)


def random_coin_spec(seed: int):
    """A seeded random non-perfect CoinSpec (shared with the batch suite).

    Probabilities are random non-dyadic fractions, so the coin
    automaton's branch lotteries exercise genuinely non-uniform exact
    arithmetic — not just the 1/2s the perfect coin compiles to.
    """
    rng = random.Random(0xC0A1 + seed)
    numerator = rng.randint(1, 11)
    denominator = rng.randint(numerator + 1, 13)
    p = Fraction(numerator, denominator)
    kind = rng.choice((BiasedCoin, DeltaFailingCoin, DisagreeingCoin))
    return kind(p)


class TestCoinDifferential:
    """Support-level oracles over the coin axis.

    The explicit checker's verdicts and state counts depend only on the
    *support* of the coin lottery, never on its probabilities: every
    branch with positive probability is explored, and none carries a
    weight into the reach fixpoint.  That gives two exact differential
    relations checked here cold (no cross-run caches):

    * any biased coin ≡ the perfect coin (same two-branch support);
    * any two failing coins ≡ each other (same three-branch support) —
      and likewise for disagreeing coins.
    """

    def _stable_run(self, protocol, coin):
        clear_shared_caches()
        result = api.verify(protocol, coin=coin, targets=COIN_TARGETS,
                            limits=COIN_LIMITS)
        assert not result.error
        return _stable(result)

    @pytest.mark.parametrize("protocol", COIN_PROTOCOLS)
    @pytest.mark.parametrize("seed", COIN_SEEDS)
    def test_bias_never_changes_explicit_observations(self, protocol, seed):
        rng = random.Random(0xB1A5 + seed)
        p1 = Fraction(rng.randint(1, 11), 13)
        assert self._stable_run(protocol, BiasedCoin(p1)) == \
            self._stable_run(protocol, None)

    @pytest.mark.parametrize("protocol", COIN_PROTOCOLS)
    @pytest.mark.parametrize("kind", (DeltaFailingCoin, DisagreeingCoin))
    def test_extra_outcome_probability_is_support_invisible(
        self, protocol, kind
    ):
        assert self._stable_run(protocol, kind(Fraction(1, 8))) == \
            self._stable_run(protocol, kind(Fraction(5, 7)))

    @pytest.mark.parametrize("seed", COIN_SEEDS)
    def test_random_specs_run_end_to_end(self, seed):
        spec = random_coin_spec(seed)
        round_tripped = parse_coin_spec(spec.spec_str())
        assert round_tripped == spec
        result = api.verify("cc85a", coin=round_tripped,
                            targets=COIN_TARGETS, limits=COIN_LIMITS)
        assert not result.error
        for target in COIN_TARGETS:
            for query in result.outcome(target).queries:
                assert query.verdict in ("holds", "violated")
