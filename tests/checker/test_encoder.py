"""Tests for the schema-to-ILP encoder."""

import pytest

from repro.checker.encoder import SchemaEncoder
from repro.checker.milestones import CombinedModel, Milestone, extract_milestones
from repro.checker.schemas import EventItem
from repro.protocols import mmr14, naive_voting
from repro.solver.floatlp import float_feasible
from repro.solver.ilp import ilp_feasible
from repro.spec.properties import PropertyLibrary


@pytest.fixture(scope="module")
def naive_setup():
    model = naive_voting.model()
    combined = CombinedModel(model)
    encoder = SchemaEncoder(combined)
    milestones = {str(m): m for m in extract_milestones(combined)}
    lib = PropertyLibrary(model)
    return model, encoder, milestones, lib


class TestEmptyPrefix:
    def test_root_is_feasible(self, naive_setup):
        _model, encoder, _ms, lib = naive_setup
        encoded = encoder.encode([], lib.inv1(0))
        result = ilp_feasible(encoded.problem)
        assert result.is_sat
        # The model must respect the resilience condition n > 2f.
        assert result.model["n"] > 2 * result.model.get("f", 0)

    def test_population_constraint(self, naive_setup):
        _model, encoder, _ms, lib = naive_setup
        encoded = encoder.encode([], lib.inv1(0))
        result = ilp_feasible(encoded.problem)
        k0 = sum(
            result.model.get(var, 0) for var in encoded.start_vars.values()
        )
        assert k0 == result.model["n"] - result.model.get("f", 0)


class TestEventEncoding:
    def test_event_at_initial_boundary_infeasible(self, naive_setup):
        """EX{D0} cannot hold before anything executed."""
        _model, encoder, _ms, lib = naive_setup
        encoded = encoder.encode([EventItem(0)], lib.inv1(0))
        assert float_feasible(encoded.problem) is False

    def test_event_after_milestone_feasible(self, naive_setup):
        _model, encoder, milestones, lib = naive_setup
        m0 = milestones["[2*v0 reaches -2*f + n + 1]"]
        encoded = encoder.encode([m0, EventItem(0)], lib.inv1(0))
        result = ilp_feasible(encoded.problem)
        assert result.is_sat

    def test_init_filter_pins_start(self, naive_setup):
        _model, encoder, milestones, lib = naive_setup
        query = lib.inv2(0)  # all processes start with 0
        m1 = milestones["[2*v1 reaches -2*f + n + 1]"]
        # With nobody starting at I1 the v1 threshold can never fire.
        encoded = encoder.encode([m1], query)
        assert float_feasible(encoded.problem) is False


class TestScheduleExtraction:
    def test_extract_round_trips(self, naive_setup):
        model, encoder, milestones, lib = naive_setup
        query = lib.inv1(0)
        m0 = milestones["[2*v0 reaches -2*f + n + 1]"]
        m1 = milestones["[2*v1 reaches -2*f + n + 1]"]
        prefix = [m0, m1, EventItem(0), EventItem(1)]
        encoded = encoder.encode(prefix, query)
        result = ilp_feasible(encoded.problem)
        assert result.is_sat
        valuation, placement, schedule = encoder.extract(encoded, result.model)
        from repro.counter.schedule import Schedule, is_applicable
        from repro.counter.system import CounterSystem

        system = CounterSystem(model, valuation)
        config = system.make_config(placement)
        assert is_applicable(system, config, Schedule(schedule))


class TestCoinBranchEncoding:
    def test_branch_actions_decoded(self):
        model = mmr14.model().single_round()
        combined = CombinedModel(model)
        encoder = SchemaEncoder(combined)
        info = combined.branch_info["rb@T1"]
        assert (info.original_rule, info.branch) == ("rb", "T1")

    def test_set_relaxation_weaker_than_prefix(self):
        """An infeasible set-relaxation implies every ordering fails."""
        model = mmr14.model().single_round()
        combined = CombinedModel(model)
        encoder = SchemaEncoder(combined)
        milestones = {str(m): m for m in extract_milestones(combined)}
        # Both coin outcomes in one round: impossible (one coin process).
        both_coins = frozenset(
            {milestones["[cc0 reaches 1]"], milestones["[cc1 reaches 1]"]}
        )
        problem = encoder.encode_set_relaxation(both_coins)
        assert float_feasible(problem) is False
        # A single outcome is fine.
        one_coin = frozenset({milestones["[cc0 reaches 1]"]})
        assert float_feasible(encoder.encode_set_relaxation(one_coin)) is True
