"""The flat interned engine reproduces the seed engine bit-for-bit.

``data/seed_verdicts.json`` was recorded by running the seed
(nested-tuple, quadratic-attractor) ``ExplicitChecker`` over every
protocol in the registry at its small valuation: per query the verdict
AND ``states_explored`` (exploration-order sensitive on violations),
plus the fairness side conditions.  The current engine must match all
of it exactly.

The quick protocols run in the default suite; ``rabin83`` / ``mmr14``
/ ``miller18`` explore 6-figure state counts and are gated behind
``--run-slow-equivalence`` (see ``conftest.py``) so tier-1 stays fast —
CI and the benchmark harness exercise them.
"""

import json
from pathlib import Path

import pytest

from repro.checker.explicit import ExplicitChecker
from repro.protocols.registry import by_name
from repro.spec.obligations import obligations_for

GOLDEN = json.loads(
    (Path(__file__).parent / "data" / "seed_verdicts.json").read_text()
)

FAST_PROTOCOLS = ("cc85a", "cc85b", "fmr05", "ks16", "aby22")
SLOW_PROTOCOLS = ("rabin83", "mmr14", "miller18")
TARGETS = ("agreement", "validity", "termination")


def _observed(name: str, target: str):
    entry = by_name(name)
    model = entry.verification_model() if target == "termination" else entry.model()
    checker = ExplicitChecker(model, entry.small_valuation, max_states=150_000)
    report = checker.check_obligations(obligations_for(checker.model, target))
    return {
        "queries": [
            [r.query, r.verdict, r.states_explored] for r in report.results
        ],
        "sides": dict(report.side_conditions),
    }


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("name", FAST_PROTOCOLS)
def test_verdicts_and_state_counts_match_seed(name, target):
    assert _observed(name, target) == GOLDEN[name][target]


@pytest.mark.slow_equivalence
@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("name", SLOW_PROTOCOLS)
def test_verdicts_and_state_counts_match_seed_slow(name, target):
    assert _observed(name, target) == GOLDEN[name][target]


def test_golden_fixture_covers_whole_registry():
    from repro.protocols.registry import benchmark

    assert set(GOLDEN) == {entry.name for entry in benchmark()}
    for record in GOLDEN.values():
        assert set(record) == set(TARGETS)
        for target_record in record.values():
            assert "error" not in target_record
