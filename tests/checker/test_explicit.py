"""Integration tests for the explicit-state checker.

These encode the paper's expected verdicts at small parameters:

* naive voting — Agreement breaks with one Byzantine process, holds
  without;
* MMR14 — Agreement and Validity hold; the binding condition CB2 is
  violated (the §II adaptive-adversary attack); CB0/CB1/CB4 hold.
"""

import pytest

from repro.checker.explicit import ExplicitChecker
from repro.checker.result import HOLDS, VIOLATED
from repro.counter.schedule import Schedule, is_applicable
from repro.counter.system import CounterSystem
from repro.errors import CheckError
from repro.protocols import mmr14, naive_voting
from repro.spec.properties import PropertyLibrary

VAL = {"n": 4, "t": 1, "f": 1}


@pytest.fixture(scope="module")
def mmr_checker():
    return ExplicitChecker(mmr14.model(), VAL)


@pytest.fixture(scope="module")
def refined_checker():
    return ExplicitChecker(mmr14.refined_model(), VAL)


class TestNaiveVoting:
    def test_agreement_violated_with_byzantine(self):
        checker = ExplicitChecker(naive_voting.model(), {"n": 3, "f": 1})
        report = checker.check_target("agreement")
        assert report.verdict == VIOLATED
        assert report.counterexample is not None

    def test_agreement_holds_without_byzantine(self):
        checker = ExplicitChecker(naive_voting.model(), {"n": 3, "f": 0})
        assert checker.check_target("agreement").verdict == HOLDS

    def test_validity_holds(self):
        checker = ExplicitChecker(naive_voting.model(), {"n": 3, "f": 1})
        assert checker.check_target("validity").verdict == HOLDS

    def test_counterexample_replays(self):
        checker = ExplicitChecker(naive_voting.model(), {"n": 3, "f": 1})
        report = checker.check_target("agreement")
        ce = report.counterexample
        system = CounterSystem(naive_voting.model(), ce.valuation)
        config = system.make_config(ce.initial_placement)
        assert is_applicable(system, config, Schedule(ce.schedule))


class TestMMR14Safety:
    def test_validity_holds(self, mmr_checker):
        report = mmr_checker.check_target("validity")
        assert report.verdict == HOLDS
        assert report.side_conditions == {
            "non_blocking": True,
            "fair_termination": True,
        }

    def test_inv2_single_query(self, mmr_checker):
        lib = PropertyLibrary(mmr_checker.model)
        result = mmr_checker.check_reach(lib.inv2(0))
        assert result.holds

    def test_inv1_holds(self, mmr_checker):
        lib = PropertyLibrary(mmr_checker.model)
        assert mmr_checker.check_reach(lib.inv1(0)).holds
        assert mmr_checker.check_reach(lib.inv1(1)).holds


class TestMMR14Binding:
    def test_cb2_violated(self, refined_checker):
        lib = PropertyLibrary(refined_checker.model)
        result = refined_checker.check_reach(lib.cb(2))
        assert result.violated
        assert result.counterexample is not None

    def test_cb0_cb1_cb4_hold(self, refined_checker):
        lib = PropertyLibrary(refined_checker.model)
        assert refined_checker.check_reach(lib.cb(0)).holds
        assert refined_checker.check_reach(lib.cb(1)).holds
        assert refined_checker.check_reach(lib.cb(4)).holds

    def test_cb2_counterexample_replays(self, refined_checker):
        lib = PropertyLibrary(refined_checker.model)
        ce = refined_checker.check_reach(lib.cb(2)).counterexample
        system = refined_checker.system
        config = system.make_config(ce.initial_placement)
        assert is_applicable(system, config, Schedule(ce.schedule))
        # The attack needs a mixed proposal: both J0 and J1 populated.
        assert ce.initial_placement.get("J0", 0) >= 1
        assert ce.initial_placement.get("J1", 0) >= 1

    def test_termination_bundle_reports_violation(self, refined_checker):
        report = refined_checker.check_target("termination")
        assert report.verdict == VIOLATED
        violated = {r.query for r in report.results if r.violated}
        assert "cb2" in violated


class TestGames:
    def test_c2prime_holds(self, refined_checker):
        lib = PropertyLibrary(refined_checker.model)
        assert refined_checker.check_game(lib.c2prime(0)).holds
        assert refined_checker.check_game(lib.c2prime(1)).holds

    def test_unknown_side_condition_rejected(self, mmr_checker):
        with pytest.raises(CheckError):
            mmr_checker.side_condition("nope")
