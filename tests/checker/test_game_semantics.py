"""Directed tests for the Lemma-2 game semantics (angelic coin).

Build tiny models where the game verdict is known by construction:

* a protocol that can finish *without deciding* even from a uniform
  start violates C2′ — the adversary needs no coin cooperation;
* the MMR14-style structure satisfies C2′ because with a uniform start
  the only coin-independent exit is the decide branch.
"""

import pytest

from repro.core.builder import AutomatonBuilder
from repro.core.coin import standard_coin_automaton
from repro.core.environment import ge, gt, standard_environment
from repro.core.expression import params
from repro.core.system import SystemModel
from repro.checker.explicit import ExplicitChecker
from repro.spec.properties import PropertyLibrary

VAL = {"n": 4, "t": 1, "f": 1}


def tiny_model(escape_rule: bool) -> SystemModel:
    """One-step protocol: vote, reach M_v, decide on a matching coin.

    With ``escape_rule`` a process may instead slip into ``E0`` without
    consulting the coin — the C2′ violation the game must find.
    """
    n, t, f = params("n t f")
    b = AutomatonBuilder("tiny" + ("-escape" if escape_rule else ""))
    b.shared("v0", "v1")
    b.coins("cc0", "cc1")
    b.border("J0", value=0)
    b.border("J1", value=1)
    b.initial("I0", value=0)
    b.initial("I1", value=1)
    b.location("M0", value=0)
    b.location("M1", value=1)
    b.final("E0", value=0)
    b.final("E1", value=1)
    b.final("D0", value=0, decision=True)
    b.final("D1", value=1, decision=True)
    b.border_entry("J0", "I0", name="r1")
    b.border_entry("J1", "I1", name="r2")
    b.rule("r3", "I0", "M0", update={"v0": 1})
    b.rule("r4", "I1", "M1", update={"v1": 1})
    b.rule("r5", "M0", "D0", guard=b.var("cc0") > 0)
    b.rule("r6", "M0", "E0", guard=b.var("cc1") > 0)
    b.rule("r7", "M1", "D1", guard=b.var("cc1") > 0)
    b.rule("r8", "M1", "E1", guard=b.var("cc0") > 0)
    if escape_rule:
        b.rule("r9", "M0", "E0", guard=b.var("v0") >= 1)
    b.round_switch("E0", "J0", name="rs1")
    b.round_switch("E1", "J1", name="rs2")
    b.round_switch("D0", "J0", name="rs3")
    b.round_switch("D1", "J1", name="rs4")
    automaton = b.build(check="multi_round")
    env = standard_environment(
        resilience=(gt(n, 3 * t), ge(t, f), ge(f, 0)),
        parameters="n t f",
    )
    return SystemModel(
        name=automaton.name,
        environment=env,
        process=automaton,
        coin=standard_coin_automaton(automaton.shared_vars, ("cc0", "cc1")),
        category="B",
    )


class TestGameVerdicts:
    def test_clean_model_satisfies_c2prime(self):
        model = tiny_model(escape_rule=False)
        checker = ExplicitChecker(model, VAL)
        lib = PropertyLibrary(model)
        assert checker.check_game(lib.c2prime(0)).holds
        assert checker.check_game(lib.c2prime(1)).holds

    def test_escape_rule_violates_c2prime(self):
        model = tiny_model(escape_rule=True)
        checker = ExplicitChecker(model, VAL)
        lib = PropertyLibrary(model)
        result = checker.check_game(lib.c2prime(0))
        assert result.violated
        # The strategy witness ends with the coin-free escape into E0.
        assert any(action.rule == "r9" for action in result.counterexample.schedule)

    def test_clean_model_satisfies_c1(self):
        """With one coin and exclusive M-population... C1 game holds only
        when mixed occupancy cannot outlive the coin: here M0 and M1 can
        coexist, so the angel cannot save both sides — C1 is violated,
        demonstrating the role the quorum-exclusive guards play in the
        real category-B models."""
        model = tiny_model(escape_rule=False)
        checker = ExplicitChecker(model, VAL)
        lib = PropertyLibrary(model)
        result = checker.check_game(lib.c1())
        assert result.violated  # mixed M0/M1 forces mixed finals

    def test_inv1_needs_quorum_guards(self):
        """Without quorum-exclusive guards M0/M1 coexist, so a decision
        D0 (coin 0) can share a round with E1 (also coin 0) — Inv1
        fails.  This isolates exactly what the strong-guard counting
        arguments contribute in the real category-B models."""
        model = tiny_model(escape_rule=False)
        checker = ExplicitChecker(model, VAL)
        lib = PropertyLibrary(model)
        assert checker.check_reach(lib.inv1(0)).violated

    def test_opposite_decisions_impossible_single_round(self):
        """D0 and D1 in one round would need both coin outcomes — the
        single coin toss forbids it even in the guard-free model."""
        from repro.spec.propositions import some_at
        from repro.spec.queries import ReachQuery

        model = tiny_model(escape_rule=False)
        checker = ExplicitChecker(model, VAL)
        query = ReachQuery(
            name="both-decide",
            formula="A F (EX{D0}) → G (¬EX{D1})",
            events=(some_at("D0"), some_at("D1")),
        )
        assert checker.check_reach(query).holds
