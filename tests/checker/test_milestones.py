"""Tests for milestone extraction and the precedence order."""

import pytest

from repro.checker.milestones import (
    CombinedModel,
    Milestone,
    extract_milestones,
    precedence_order,
    precedes,
)
from repro.core.guards import Var
from repro.errors import CheckError
from repro.protocols import mmr14, naive_voting


@pytest.fixture(scope="module")
def mmr_rd():
    return mmr14.model().single_round()


@pytest.fixture(scope="module")
def combined(mmr_rd):
    return CombinedModel(mmr_rd)


class TestCombinedModel:
    def test_requires_single_round(self):
        with pytest.raises(CheckError):
            CombinedModel(mmr14.model())

    def test_rule_universe_merges_coin(self, combined):
        names = {rule.name for rule in combined.rules}
        assert "r3" in names            # process rule
        assert "rb@T0" in names         # derandomized coin branch
        assert "rb@T1" in names

    def test_stutter_loops_excluded(self, combined):
        assert not any(
            rule.is_self_loop and not rule.update for rule in combined.rules
        )

    def test_branch_info_maps_back(self, combined):
        info = combined.branch_info["rb@T0"]
        assert info.original_rule == "rb"
        assert info.branch == "T0"
        assert combined.branch_info["r3"].branch is None

    def test_topological_order_sources_first(self, combined):
        order = [rule.name for rule in combined.topological_rule_order()]
        # Vote (I->S) strictly before AUX broadcast (S->B) before coin use.
        assert order.index("r3") < order.index("r7")
        assert order.index("r7") < order.index("r22")

    def test_no_coin_protocol(self):
        combined = CombinedModel(naive_voting.model())
        assert {rule.name for rule in combined.rules} == {"r1", "r2", "r3", "r4"}


class TestExtraction:
    def test_mmr14_milestones(self, combined):
        milestones = extract_milestones(combined)
        assert len(milestones) == 9
        rendered = {str(m) for m in milestones}
        assert "[b0 reaches -f + t + 1]" in rendered
        assert "[cc0 reaches 1]" in rendered
        assert "[a0 + a1 reaches -f + n - t]" in rendered

    def test_shared_atoms_deduplicate(self, combined):
        # r7 and r9 share the bin0 guard: one milestone, not two.
        milestones = extract_milestones(combined)
        bin0 = [m for m in milestones if str(m) == "[b0 reaches -f + 2*t + 1]"]
        assert len(bin0) == 1


class TestPrecedence:
    def test_threshold_chain_ordered(self, mmr_rd, combined):
        milestones = extract_milestones(combined)
        by_str = {str(m): m for m in milestones}
        low = by_str["[b0 reaches -f + t + 1]"]
        high = by_str["[b0 reaches -f + 2*t + 1]"]
        assert precedes(low, high, mmr_rd)
        assert not precedes(high, low, mmr_rd)

    def test_sum_dominates_components(self, mmr_rd, combined):
        milestones = extract_milestones(combined)
        by_str = {str(m): m for m in milestones}
        total = by_str["[a0 + a1 reaches -f + n - t]"]
        single = by_str["[a0 reaches -f + n - t]"]
        # a0 >= n-t-f implies a0+a1 >= n-t-f: the sum fires first.
        assert precedes(total, single, mmr_rd)

    def test_unrelated_variables_incomparable(self, mmr_rd, combined):
        milestones = extract_milestones(combined)
        by_str = {str(m): m for m in milestones}
        b0 = by_str["[b0 reaches -f + t + 1]"]
        b1 = by_str["[b1 reaches -f + t + 1]"]
        assert not precedes(b0, b1, mmr_rd)
        assert not precedes(b1, b0, mmr_rd)

    def test_order_is_a_dag(self, mmr_rd, combined):
        milestones = extract_milestones(combined)
        predecessors = precedence_order(milestones, mmr_rd)
        # Chains: t+1-f before 2t+1-f per b-variable; sum before singles.
        chained = sum(1 for preds in predecessors.values() if preds)
        assert chained >= 4

    def test_milestone_not_self_preceding(self, mmr_rd, combined):
        milestones = extract_milestones(combined)
        for m in milestones:
            assert not precedes(m, m, mmr_rd)
