"""Tests for the parameterized (schema-based) checker.

Cross-validates against the explicit checker's ground truth: the
parameterized verdicts must agree, and every parameterized
counterexample must replay concretely.
"""

import pytest

from repro.checker.parameterized import ParameterizedChecker
from repro.checker.result import HOLDS, VIOLATED
from repro.counter.schedule import Schedule, is_applicable
from repro.counter.system import CounterSystem
from repro.protocols import cc85, fmr05, mmr14, naive_voting
from repro.spec.properties import PropertyLibrary


@pytest.fixture(scope="module")
def naive_checker():
    return ParameterizedChecker(naive_voting.model())


@pytest.fixture(scope="module")
def mmr_checker():
    return ParameterizedChecker(mmr14.refined_model())


class TestNaiveVoting:
    def test_agreement_violated_parametrically(self, naive_checker):
        lib = PropertyLibrary(naive_voting.model())
        result = naive_checker.check_reach(lib.inv1(0))
        assert result.verdict == VIOLATED
        ce = result.counterexample
        # The witness requires a Byzantine process.
        assert ce.valuation["f"] >= 1
        assert naive_voting.model().environment.admits(ce.valuation)

    def test_validity_holds_parametrically(self, naive_checker):
        lib = PropertyLibrary(naive_voting.model())
        assert naive_checker.check_reach(lib.inv2(0)).verdict == HOLDS
        assert naive_checker.check_reach(lib.inv2(1)).verdict == HOLDS

    def test_counterexample_replays(self, naive_checker):
        lib = PropertyLibrary(naive_voting.model())
        ce = naive_checker.check_reach(lib.inv1(0)).counterexample
        system = CounterSystem(naive_checker.model, ce.valuation)
        config = system.make_config(ce.initial_placement)
        assert is_applicable(system, config, Schedule(ce.schedule))

    def test_nschemas_reported(self, naive_checker):
        lib = PropertyLibrary(naive_voting.model())
        result = naive_checker.check_reach(lib.inv1(0))
        assert result.nschemas == naive_checker.nschemas(lib.inv1(0)) > 0


class TestMMR14Binding:
    def test_cb2_violated_with_admissible_witness(self, mmr_checker):
        lib = PropertyLibrary(mmr14.refined_model())
        result = mmr_checker.check_reach(lib.cb(2))
        assert result.verdict == VIOLATED
        valuation = result.counterexample.valuation
        assert mmr14.refined_model().environment.admits(valuation)
        assert valuation["n"] > 3 * valuation["t"]

    def test_cb2_witness_replays_and_witnesses_events(self, mmr_checker):
        lib = PropertyLibrary(mmr14.refined_model())
        query = lib.cb(2)
        ce = mmr_checker.check_reach(query).counterexample
        system = CounterSystem(mmr_checker.model, ce.valuation)
        config = system.make_config(ce.initial_placement)
        witnessed = [event.holds(system, config) for event in query.events]
        for action in ce.schedule:
            config = system.apply(config, action)
            for index, event in enumerate(query.events):
                witnessed[index] = witnessed[index] or event.holds(system, config)
        assert all(witnessed)

    def test_milestone_count(self, mmr_checker):
        assert mmr_checker.milestone_count() == 11


class TestAgreementWithExplicit:
    """Parameterized verdicts match the explicit ground truth."""

    @pytest.mark.parametrize(
        "factory", [cc85.model_a, fmr05.model], ids=["cc85a", "fmr05"]
    )
    def test_validity_holds_both_ways(self, factory):
        from repro.checker.explicit import ExplicitChecker

        model = factory()
        lib = PropertyLibrary(model)
        parametric = ParameterizedChecker(model)
        assert parametric.check_reach(lib.inv2(0)).verdict == HOLDS

    def test_budget_reports_unknown(self):
        model = mmr14.refined_model()
        checker = ParameterizedChecker(model, node_budget=5)
        lib = PropertyLibrary(model)
        result = checker.check_reach(lib.inv1(0))
        assert result.verdict == "unknown"


class TestObligations:
    def test_bundle_over_reach_queries(self, naive_checker):
        from repro.spec.obligations import validity_obligations

        report = naive_checker.check_obligations(
            validity_obligations(naive_voting.model())
        )
        assert report.verdict == HOLDS
        assert len(report.results) == 2
