"""Tests for schema enumeration and analytic counting."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker.milestones import Milestone
from repro.checker.schemas import (
    EventItem,
    addable_milestones,
    count_linear_extensions,
    count_schemas,
    iter_extensions,
)
from repro.core.expression import ParamExpr


def mk(name: str) -> Milestone:
    return Milestone(((name, 1),), ParamExpr.constant(1))


def chain_preds(milestones):
    """Total order m0 < m1 < ... (a chain poset)."""
    return {
        m: frozenset(milestones[:i]) for i, m in enumerate(milestones)
    }


def antichain_preds(milestones):
    return {m: frozenset() for m in milestones}


class TestAddable:
    def test_chain_exposes_one(self):
        ms = [mk("a"), mk("b"), mk("c")]
        preds = chain_preds(ms)
        assert addable_milestones(ms, preds, frozenset()) == [ms[0]]
        assert addable_milestones(ms, preds, frozenset({ms[0]})) == [ms[1]]

    def test_antichain_exposes_all(self):
        ms = [mk("a"), mk("b")]
        assert len(addable_milestones(ms, antichain_preds(ms), frozenset())) == 2


class TestCounting:
    def test_zero_milestones_one_event(self):
        assert count_schemas([], {}, 1) == 1

    def test_zero_events(self):
        ms = [mk("a")]
        assert count_schemas(ms, antichain_preds(ms), 0) == 1

    def test_single_milestone_single_event(self):
        # Sequences: [e], [m, e] -> 2 schemas.
        ms = [mk("a")]
        assert count_schemas(ms, antichain_preds(ms), 1) == 2

    def test_antichain_two_milestones_one_event(self):
        # [e], [a e], [b e], [a b e], [b a e] -> 5.
        ms = [mk("a"), mk("b")]
        assert count_schemas(ms, antichain_preds(ms), 1) == 5

    def test_chain_two_milestones_one_event(self):
        # [e], [a e], [a b e] -> 3.
        ms = [mk("a"), mk("b")]
        assert count_schemas(ms, chain_preds(ms), 1) == 3

    def test_two_events_order_matters(self):
        # No milestones: [e0 e1], [e1 e0] -> 2.
        assert count_schemas([], {}, 2) == 2

    def test_chain_reduces_count(self):
        ms = [mk(c) for c in "abcd"]
        loose = count_schemas(ms, antichain_preds(ms), 2)
        tight = count_schemas(ms, chain_preds(ms), 2)
        assert tight < loose

    def test_matches_bruteforce_enumeration(self):
        """The DP equals a brute-force walk of the same tree."""
        ms = [mk("a"), mk("b"), mk("c")]
        preds = {ms[0]: frozenset(), ms[1]: frozenset({ms[0]}), ms[2]: frozenset()}
        n_events = 2

        def walk(flipped, placed):
            if len(placed) == n_events:
                return 1
            total = 0
            for item in iter_extensions(ms, preds, flipped, placed, n_events):
                if isinstance(item, EventItem):
                    total += walk(flipped, placed | {item.index})
                else:
                    total += walk(flipped | {item}, placed)
            return total

        assert walk(frozenset(), frozenset()) == count_schemas(ms, preds, n_events)

    def test_linear_extensions_factorial_for_antichain(self):
        ms = [mk(c) for c in "abcd"]
        assert count_linear_extensions(ms, antichain_preds(ms)) == 24
        assert count_linear_extensions(ms, chain_preds(ms)) == 1


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 5), events=st.integers(1, 2))
def test_antichain_count_grows_with_milestones(n, events):
    ms = [mk(f"m{i}") for i in range(n)]
    preds = antichain_preds(ms)
    smaller = count_schemas(ms[:-1], {m: frozenset() for m in ms[:-1]}, events)
    assert count_schemas(ms, preds, events) > smaller


class TestExtensionsOrder:
    def test_events_offered_first(self):
        ms = [mk("a")]
        items = list(
            iter_extensions(ms, antichain_preds(ms), frozenset(), frozenset(), 1)
        )
        assert isinstance(items[0], EventItem)
        assert items[1] == ms[0]

    def test_placed_events_not_reoffered(self):
        items = list(iter_extensions([], {}, frozenset(), frozenset({0}), 2))
        assert items == [EventItem(1)]
