"""Suite-wide options: opt-in gate for the slow equivalence sweep."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow-equivalence",
        action="store_true",
        default=False,
        help="run the large-state-space engine equivalence protocols",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow_equivalence: large-state-space seed-equivalence sweep "
        "(enable with --run-slow-equivalence)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow-equivalence"):
        return
    skip = pytest.mark.skip(reason="needs --run-slow-equivalence")
    for item in items:
        if "slow_equivalence" in item.keywords:
            item.add_marker(skip)
