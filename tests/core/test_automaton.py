"""Unit tests for threshold automata: structure, validation, canonicity."""

import pytest

from repro.core.automaton import ThresholdAutomaton, strongly_connected_components
from repro.core.builder import AutomatonBuilder
from repro.core.guards import Var
from repro.core.locations import LocKind, border, final, initial, intermediate
from repro.core.rules import Rule, make_update
from repro.errors import ValidationError
from repro.protocols import mmr14, naive_voting


class TestSCC:
    def test_chain_has_singleton_components(self):
        comp = strongly_connected_components("abc", [("a", "b"), ("b", "c")])
        assert len({comp["a"], comp["b"], comp["c"]}) == 3

    def test_cycle_is_one_component(self):
        comp = strongly_connected_components(
            "abc", [("a", "b"), ("b", "c"), ("c", "a")]
        )
        assert comp["a"] == comp["b"] == comp["c"]

    def test_two_components(self):
        comp = strongly_connected_components(
            "abcd", [("a", "b"), ("b", "a"), ("c", "d")]
        )
        assert comp["a"] == comp["b"]
        assert comp["c"] != comp["d"]


class TestBasicValidation:
    def _base(self, rules, coin_vars=("cc0",), role="process"):
        return ThresholdAutomaton(
            "t",
            [initial("A"), final("B")],
            ["x"],
            list(coin_vars),
            rules,
            role=role,
        )

    def test_unknown_location_rejected(self):
        with pytest.raises(ValidationError):
            self._base([Rule("r", "A", "Z")])

    def test_undeclared_guard_variable_rejected(self):
        with pytest.raises(ValidationError):
            self._base([Rule("r", "A", "B", guard=(Var("nope") >= 1,))])

    def test_mixed_guard_rejected(self):
        guard = (Var("x") + Var("cc0") >= 1,)
        with pytest.raises(ValidationError):
            self._base([Rule("r", "A", "B", guard=guard)])

    def test_process_rule_updating_coin_rejected(self):
        with pytest.raises(ValidationError):
            self._base([Rule("r", "A", "B", update=make_update({"cc0": 1}))])

    def test_coin_role_rule_updating_shared_rejected(self):
        with pytest.raises(ValidationError):
            self._base(
                [Rule("r", "A", "B", update=make_update({"x": 1}))], role="coin"
            )

    def test_coin_role_coin_guard_rejected(self):
        with pytest.raises(ValidationError):
            self._base(
                [Rule("r", "A", "B", guard=(Var("cc0") >= 1,))], role="coin"
            )

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(ValidationError):
            self._base([Rule("r", "A", "B"), Rule("r", "A", "B")])

    def test_duplicate_locations_rejected(self):
        with pytest.raises(ValidationError):
            ThresholdAutomaton("t", [initial("A"), initial("A")], ["x"], [], [])

    def test_unknown_role_rejected(self):
        with pytest.raises(ValidationError):
            ThresholdAutomaton("t", [initial("A")], [], [], [], role="oracle")


class TestQueries:
    def test_mmr14_partitions(self):
        ta = mmr14.automaton()
        assert {l.name for l in ta.border_locations} == {"J0", "J1"}
        assert {l.name for l in ta.initial_locations} == {"I0", "I1"}
        assert {l.name for l in ta.final_locations} == {"E0", "E1", "D0", "D1"}
        assert {l.name for l in ta.decision_locations()} == {"D0", "D1"}
        assert {l.name for l in ta.decision_locations(value=0)} == {"D0"}

    def test_mmr14_round_switches(self):
        ta = mmr14.automaton()
        switches = {(r.source, r.target) for r in ta.round_switch_rules}
        assert switches == {("E0", "J0"), ("E1", "J1"), ("D0", "J0"), ("D1", "J1")}

    def test_mmr14_border_entries(self):
        ta = mmr14.automaton()
        entries = {(r.source, r.target) for r in ta.border_entry_rules}
        assert entries == {("J0", "I0"), ("J1", "I1")}

    def test_mmr14_coin_based_rules(self):
        ta = mmr14.automaton()
        coin_rules = {r.name for r in ta.coin_based_rules()}
        assert coin_rules == {"r22", "r23", "r24", "r25", "r26", "r27"}

    def test_mmr14_guard_atoms_deduplicated(self):
        ta = mmr14.automaton()
        atoms = ta.guard_atoms()
        # relay0, relay1, bin0, bin1, aux0, aux1, aux_any, coin0, coin1
        assert len(atoms) == 9

    def test_rules_from_to(self):
        ta = naive_voting.automaton()
        assert {r.name for r in ta.rules_from("S")} == {"r3", "r4"}
        assert {r.name for r in ta.rules_to("S")} == {"r1", "r2"}

    def test_size(self):
        assert naive_voting.automaton().size() == (5, 4)


class TestCanonicity:
    def test_mmr14_is_canonical(self):
        assert mmr14.automaton().is_canonical()

    def test_update_on_in_round_cycle_rejected(self):
        b = AutomatonBuilder("bad")
        b.shared("x")
        b.initial("A")
        b.location("B")
        b.rule("r1", "A", "B", update={"x": 1})
        b.rule("r2", "B", "A")
        with pytest.raises(ValidationError):
            b.build(check="canonical")

    def test_self_loop_with_update_rejected(self):
        b = AutomatonBuilder("bad")
        b.shared("x")
        b.initial("A")
        b.rule("r1", "A", "A", update={"x": 1})
        with pytest.raises(ValidationError):
            b.build(check="canonical")

    def test_round_switch_cycle_is_benign(self):
        # The multi-round loop through round switches must not count.
        assert mmr14.automaton().is_canonical()


class TestMultiRoundForm:
    def test_mmr14_passes(self):
        mmr14.automaton().check_multi_round_form()

    def test_missing_initial_partner_rejected(self):
        b = AutomatonBuilder("bad")
        b.border("J0", value=0)
        b.final("E0", value=0)
        b.round_switch("E0", "J0")
        # Border with no outgoing border-entry rule.
        with pytest.raises(ValidationError):
            b.build(check="multi_round")

    def test_guarded_round_switch_rejected(self):
        b = AutomatonBuilder("bad")
        b.shared("x")
        b.border("J0", value=0)
        b.initial("I0", value=0)
        b.final("E0", value=0)
        b.border_entry("J0", "I0")
        b.rule("rx", "I0", "E0")
        b.rule("rs", "E0", "J0", guard=Var("x") >= 1)
        with pytest.raises(ValidationError):
            b.build(check="multi_round")

    def test_value_crossing_round_switch_rejected(self):
        b = AutomatonBuilder("bad")
        b.border("J0", value=0)
        b.border("J1", value=1)
        b.initial("I0", value=0)
        b.initial("I1", value=1)
        b.final("E0", value=0)
        b.final("E1", value=1)
        b.border_entry("J0", "I0")
        b.border_entry("J1", "I1")
        b.rule("r1", "I0", "E0")
        b.rule("r2", "I1", "E1")
        b.round_switch("E0", "J1")  # crosses values
        b.round_switch("E1", "J0")
        with pytest.raises(ValidationError):
            b.build(check="multi_round")
