"""Unit tests for the common-coin probabilistic automaton."""

from fractions import Fraction

import pytest

from repro.core.coin import CoinAutomaton, standard_coin_automaton
from repro.core.guards import Var
from repro.core.locations import LocKind, border, final, initial
from repro.core.rules import ProbRule, dirac, fair_coin, make_update
from repro.errors import ValidationError

SHARED = ("b0", "b1")
COINS = ("cc0", "cc1")


class TestStandardCoin:
    def test_structure(self):
        coin = standard_coin_automaton(SHARED, COINS)
        assert {l.name for l in coin.border_locations} == {"J2"}
        assert {l.name for l in coin.initial_locations} == {"I2"}
        assert {l.name for l in coin.final_locations} == {"C0", "C1"}
        assert coin.size() == (6, 6)

    def test_single_non_dirac_rule(self):
        coin = standard_coin_automaton(SHARED, COINS)
        (toss,) = coin.non_dirac_rules()
        assert toss.name == "rb"
        assert toss.probability("T0") == Fraction(1, 2)

    def test_canonical(self):
        assert standard_coin_automaton(SHARED, COINS).is_canonical()

    def test_trigger_guard_attached(self):
        from repro.core.expression import params

        n, = params("n")
        coin = standard_coin_automaton(
            SHARED, COINS, trigger_guard=(Var("b0") >= n,)
        )
        assert coin.rule("rb").guard

    def test_requires_two_coin_vars(self):
        with pytest.raises(ValidationError):
            standard_coin_automaton(SHARED, ("cc0",))

    def test_publication_updates(self):
        coin = standard_coin_automaton(SHARED, COINS)
        assert coin.rule("rc").update == (("cc0", 1),)
        assert coin.rule("rd").update == (("cc1", 1),)


class TestValidation:
    def _make(self, rules):
        return CoinAutomaton(
            "c",
            [border("J2"), initial("I2"), final("C0", value=0)],
            SHARED,
            COINS,
            rules,
        )

    def test_coin_guard_rejected(self):
        with pytest.raises(ValidationError):
            self._make([dirac("r", "J2", "I2", guard=(Var("cc0") >= 1,))])

    def test_shared_update_rejected(self):
        with pytest.raises(ValidationError):
            self._make([dirac("r", "J2", "I2", update=make_update({"b0": 1}))])

    def test_unknown_branch_location_rejected(self):
        with pytest.raises(ValidationError):
            self._make([fair_coin("r", "I2", "C0", "nowhere")])

    def test_simple_guard_allowed(self):
        coin = self._make([dirac("r", "J2", "I2", guard=(Var("b0") >= 1,))])
        assert coin.rule("r").guard

    def test_rules_from(self):
        coin = standard_coin_automaton(SHARED, COINS)
        assert {r.name for r in coin.rules_from("I2")} == {"rb"}

    def test_edges_cover_branches(self):
        coin = standard_coin_automaton(SHARED, COINS)
        edges = {(s, d) for s, d, _ in coin.edges()}
        assert ("I2", "T0") in edges and ("I2", "T1") in edges
