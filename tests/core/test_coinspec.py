"""The CoinSpec hierarchy: parsing, identity, automaton shapes.

The contract every other layer leans on:

* the spec grammar and the JSON form both round-trip exactly;
* :class:`PerfectCoin` is *the* default — the spec-built standard coin
  automaton equals the historical spec-less one, dataclass-for-
  dataclass, so coin-free behaviour is bit-identical everywhere;
* the extra-outcome specs grow the Fig. 4(b) lozenge by exactly one
  publish path (nothing for a failed round, the secondary pair for a
  split round) and stay canonical;
* :meth:`DisagreeingCoin.adapt_process` twins exactly the coin-guarded
  rules, appended after the originals.
"""

from fractions import Fraction

import pytest

from repro.core.coin import standard_coin_automaton
from repro.core.coinspec import (
    SPLIT_RULE_SUFFIX,
    BiasedCoin,
    CoinSpec,
    DeltaFailingCoin,
    DisagreeingCoin,
    PerfectCoin,
    coin_spec_from_dict,
    parse_coin_spec,
    resolve_coin_spec,
    split_coin_vars,
)
from repro.errors import ValidationError
from repro.protocols import mmr14

SPECS = (
    PerfectCoin(),
    BiasedCoin(Fraction(1, 4)),
    DeltaFailingCoin(Fraction(1, 8)),
    DisagreeingCoin(Fraction(1, 8)),
)


class TestGrammar:
    @pytest.mark.parametrize("spec", SPECS, ids=str)
    def test_spec_str_round_trips(self, spec):
        assert parse_coin_spec(spec.spec_str()) == spec

    @pytest.mark.parametrize("spec", SPECS, ids=str)
    def test_dict_round_trips(self, spec):
        assert coin_spec_from_dict(spec.to_dict()) == spec

    def test_decimal_and_fraction_both_parse(self):
        assert parse_coin_spec("biased:0.25") == parse_coin_spec("biased:1/4")

    @pytest.mark.parametrize("text", (
        "weighted:1/4",      # unknown kind
        "biased",            # missing parameter
        "biased:",           # empty parameter
        "biased:x",          # unparseable probability
        "perfect:1/2",       # perfect takes no parameter
        "biased:0",          # out of range
        "biased:1",
        "failing:0",
        "disagreeing:5/4",
    ))
    def test_bad_specs_rejected(self, text):
        with pytest.raises(ValidationError):
            parse_coin_spec(text)

    def test_unknown_kind_error_lists_known_kinds(self):
        with pytest.raises(ValidationError, match="biased"):
            parse_coin_spec("weighted:1/4")

    def test_resolve_accepts_all_forms(self):
        spec = BiasedCoin(Fraction(1, 4))
        assert resolve_coin_spec(None) == PerfectCoin()
        assert resolve_coin_spec("biased:1/4") == spec
        assert resolve_coin_spec(spec) is spec
        assert resolve_coin_spec({"kind": "biased", "p1": "1/4"}) == spec
        with pytest.raises(ValidationError):
            resolve_coin_spec(0.25)

    def test_only_perfect_is_default(self):
        defaults = [spec for spec in SPECS if spec.is_default]
        assert defaults == [PerfectCoin()]


class TestLotteries:
    @pytest.mark.parametrize("spec", SPECS, ids=str)
    def test_probabilities_sum_to_one(self, spec):
        assert sum(spec.toss_probabilities()) == 1

    def test_exact_fractions(self):
        assert PerfectCoin().toss_probabilities() == (
            Fraction(1, 2), Fraction(1, 2), Fraction(0))
        assert BiasedCoin(Fraction(1, 4)).toss_probabilities() == (
            Fraction(3, 4), Fraction(1, 4), Fraction(0))
        assert DeltaFailingCoin(Fraction(1, 8)).toss_probabilities() == (
            Fraction(7, 16), Fraction(7, 16), Fraction(1, 8))
        assert DisagreeingCoin(Fraction(1, 8)).toss_probabilities() == (
            Fraction(7, 16), Fraction(7, 16), Fraction(1, 8))

    def test_split_coin_vars_conventional_and_custom(self):
        assert split_coin_vars(("cc0", "cc1")) == ("cd0", "cd1")
        assert split_coin_vars(("heads", "tails")) == ("headsd", "tailsd")


class TestStandardCoinAutomaton:
    SHARED = ("v0", "v1")

    def test_perfect_spec_equals_specless_default(self):
        plain = standard_coin_automaton(self.SHARED, prefix="x")
        spec = standard_coin_automaton(self.SHARED, prefix="x",
                                       spec=PerfectCoin())
        assert plain.locations == spec.locations
        assert plain.rules == spec.rules
        assert plain.coin_vars == spec.coin_vars

    def test_biased_keeps_shape_changes_lottery(self):
        automaton = standard_coin_automaton(
            self.SHARED, prefix="x", spec=BiasedCoin(Fraction(1, 4)))
        assert len(automaton.locations) == 6
        toss = automaton.rule("rb")
        assert dict(toss.branches) == {"T0": Fraction(3, 4),
                                       "T1": Fraction(1, 4)}
        assert automaton.coin_vars == ("cc0", "cc1")

    def test_failing_adds_silent_branch(self):
        automaton = standard_coin_automaton(
            self.SHARED, prefix="x", spec=DeltaFailingCoin(Fraction(1, 8)))
        assert {loc.name for loc in automaton.locations} >= {"Tbot", "Cbot"}
        assert dict(automaton.rule("rb").branches)["Tbot"] == Fraction(1, 8)
        # The failed round publishes no coin value at all.
        assert automaton.rule("rg").updated_variables() == set()
        assert automaton.coin_vars == ("cc0", "cc1")
        assert automaton.is_canonical()

    def test_disagreeing_publishes_secondary_pair(self):
        automaton = standard_coin_automaton(
            self.SHARED, prefix="x", spec=DisagreeingCoin(Fraction(1, 8)))
        assert {loc.name for loc in automaton.locations} >= {"TS", "CS"}
        assert automaton.coin_vars == ("cc0", "cc1", "cd0", "cd1")
        # A split round publishes *both* secondary variables.
        assert automaton.rule("rg").updated_variables() == {"cd0", "cd1"}
        assert automaton.is_canonical()


class TestAdaptProcess:
    def test_identity_for_single_valued_specs(self):
        process = mmr14.automaton()
        for spec in (PerfectCoin(), BiasedCoin(Fraction(1, 4)),
                     DeltaFailingCoin(Fraction(1, 8))):
            assert spec.adapt_process(process) is process

    def test_disagreeing_twins_exactly_the_coin_guarded_rules(self):
        process = mmr14.automaton()
        adapted = DisagreeingCoin(Fraction(1, 8)).adapt_process(process)
        base = set(process.coin_vars)
        originals = [r for r in process.rules]
        twins = [r for r in adapted.rules
                 if r.name.endswith(SPLIT_RULE_SUFFIX)]
        coin_guarded = [r for r in originals
                        if r.guard_variables() & base]
        assert coin_guarded, "mmr14 has coin-guarded rules"
        assert len(twins) == len(coin_guarded)
        # Original rules stay an untouched prefix; twins append after.
        assert adapted.rules[:len(originals)] == tuple(originals)
        mapping = dict(zip(process.coin_vars,
                           split_coin_vars(tuple(process.coin_vars))))
        for twin in twins:
            original = process.rule(twin.name[:-len(SPLIT_RULE_SUFFIX)])
            assert twin.source == original.source
            assert twin.target == original.target
            assert twin.update == original.update
            # Guards read the secondary pair instead of the primary.
            assert twin.guard_variables() & set(mapping.values())
            assert not twin.guard_variables() & base

    def test_adapted_coin_vars_match_coin_automaton(self):
        spec = DisagreeingCoin(Fraction(1, 8))
        model = mmr14.model(coin=spec)
        assert model.process.coin_vars == model.coin.coin_vars


class TestAbstractBase:
    def test_base_spec_is_abstract(self):
        spec = CoinSpec()
        for method in (spec.spec_str, spec.to_dict,
                       spec.toss_probabilities):
            with pytest.raises(NotImplementedError):
                method()
