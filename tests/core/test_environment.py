"""Unit tests for environments and resilience conditions."""

import pytest

from repro.core.environment import Environment, eq, ge, gt, le, lt, standard_environment
from repro.core.expression import ParamExpr, params
from repro.errors import ModelError, SemanticsError

N, T, F = params("n t f")


def mmr_env():
    return standard_environment(
        resilience=(gt(N, 3 * T), ge(T, F), ge(F, 0)),
        parameters="n t f",
        num_processes=N - F,
    )


class TestConstraints:
    def test_operators(self):
        assert gt(N, 3 * T).holds({"n": 4, "t": 1})
        assert not gt(N, 3 * T).holds({"n": 3, "t": 1})
        assert ge(T, F).holds({"t": 1, "f": 1})
        assert le(F, T).holds({"t": 1, "f": 0})
        assert lt(F, T).holds({"t": 1, "f": 0})
        assert eq(F, T).holds({"t": 1, "f": 1})

    def test_unknown_operator_rejected(self):
        from repro.core.environment import Constraint

        with pytest.raises(ModelError):
            Constraint(N, "!=", T)

    def test_ge_zero_forms_strict(self):
        (form,) = gt(N, 3 * T).ge_zero_forms()
        # n > 3t over integers is n - 3t - 1 >= 0.
        assert form.evaluate({"n": 4, "t": 1}) == 0
        assert form.evaluate({"n": 3, "t": 1}) == -1

    def test_ge_zero_forms_equality_gives_two(self):
        forms = eq(N, T).ge_zero_forms()
        assert len(forms) == 2

    def test_str(self):
        assert str(gt(N, 3 * T)) == "n > 3*t"


class TestEnvironment:
    def test_admits(self):
        env = mmr_env()
        assert env.admits({"n": 4, "t": 1, "f": 1})
        assert not env.admits({"n": 3, "t": 1, "f": 1})
        assert not env.admits({"n": 4, "t": 1, "f": 2})  # f > t

    def test_negative_parameter_rejected(self):
        env = mmr_env()
        with pytest.raises(SemanticsError):
            env.admits({"n": 4, "t": 1, "f": -1})

    def test_missing_parameter_rejected(self):
        env = mmr_env()
        with pytest.raises(SemanticsError):
            env.admits({"n": 4, "t": 1})

    def test_system_size(self):
        env = mmr_env()
        assert env.system_size({"n": 4, "t": 1, "f": 1}) == (3, 1)

    def test_system_size_rejects_inadmissible(self):
        env = mmr_env()
        with pytest.raises(SemanticsError):
            env.system_size({"n": 3, "t": 1, "f": 1})

    def test_iter_admissible(self):
        env = mmr_env()
        found = list(env.iter_admissible(4))
        assert {"n": 4, "t": 1, "f": 0} in found
        assert {"n": 4, "t": 1, "f": 1} in found
        assert all(env.admits(v) for v in found)

    def test_undeclared_parameter_in_rc_rejected(self):
        cc, = params("cc")
        with pytest.raises(ModelError):
            Environment(
                parameters=("n",),
                resilience=(ge(cc, 1),),
                num_processes=ParamExpr.var("n"),
            )

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(ModelError):
            Environment(
                parameters=("n", "n"),
                resilience=(),
                num_processes=ParamExpr.var("n"),
            )

    def test_describe_mentions_everything(self):
        text = mmr_env().describe()
        assert "n > 3*t" in text and "-f + n" in text
