"""Unit tests for parameter expressions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.expression import ParamExpr, params
from repro.errors import SemanticsError


class TestConstruction:
    def test_params_splits_names(self):
        n, t, f = params("n t f")
        assert n.parameters() == ("n",)
        assert t.coefficient("t") == 1

    def test_params_accepts_iterable(self):
        (x,) = params(["x"])
        assert x.coefficient("x") == 1

    def test_constant(self):
        c = ParamExpr.constant(7)
        assert c.is_constant
        assert c.evaluate({}) == 7

    def test_coerce_int(self):
        assert ParamExpr.coerce(3) == ParamExpr.constant(3)

    def test_coerce_passthrough(self):
        n, = params("n")
        assert ParamExpr.coerce(n) is n

    def test_coerce_rejects_float(self):
        with pytest.raises(TypeError):
            ParamExpr.coerce(1.5)

    def test_zero_coefficients_dropped(self):
        n, = params("n")
        expr = n - n
        assert expr.is_constant
        assert expr.parameters() == ()


class TestArithmetic:
    def test_addition_merges_terms(self):
        n, t = params("n t")
        expr = n + t + n
        assert expr.coefficient("n") == 2
        assert expr.coefficient("t") == 1

    def test_subtraction(self):
        n, t = params("n t")
        expr = n - 2 * t - 1
        assert expr.evaluate({"n": 10, "t": 3}) == 3

    def test_right_subtraction(self):
        t, = params("t")
        expr = 5 - t
        assert expr.evaluate({"t": 2}) == 3

    def test_scalar_multiplication(self):
        t, = params("t")
        assert (3 * t).evaluate({"t": 4}) == 12
        assert (t * 3).evaluate({"t": 4}) == 12

    def test_multiplication_rejects_non_int(self):
        t, = params("t")
        with pytest.raises(TypeError):
            t * 0.5

    def test_negation(self):
        n, = params("n")
        assert (-n).evaluate({"n": 5}) == -5

    def test_paper_guard_rhs(self):
        # The MMR14 threshold 2t + 1 - f.
        n, t, f = params("n t f")
        expr = 2 * t + 1 - f
        assert expr.evaluate({"n": 4, "t": 1, "f": 1}) == 2


class TestEvaluation:
    def test_missing_parameter_raises(self):
        n, = params("n")
        with pytest.raises(SemanticsError):
            n.evaluate({})

    def test_str_rendering(self):
        n, t = params("n t")
        assert str(2 * t + 1) == "2*t + 1"
        assert str(n - t) == "n - t"
        assert str(ParamExpr.constant(0)) == "0"


@given(
    a=st.integers(-5, 5),
    b=st.integers(-5, 5),
    c=st.integers(-5, 5),
    n=st.integers(0, 100),
    t=st.integers(0, 100),
)
def test_evaluation_is_linear(a, b, c, n, t):
    pn, pt = params("n t")
    expr = a * pn + b * pt + c
    assert expr.evaluate({"n": n, "t": t}) == a * n + b * t + c


@given(n=st.integers(0, 50), t=st.integers(0, 50))
def test_expression_equality_is_canonical(n, t):
    pn, pt = params("n t")
    left = pn + pt
    right = pt + pn
    assert left == right
    assert hash(left) == hash(right)
    assert left.evaluate({"n": n, "t": t}) == right.evaluate({"n": n, "t": t})
