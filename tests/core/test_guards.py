"""Unit tests for threshold guards and the fluent Var API."""

import pytest

from repro.core.expression import params
from repro.core.guards import Cmp, Guard, Var, conjunction_holds
from repro.errors import SemanticsError


class TestFluentConstruction:
    def test_simple_ge_guard(self):
        n, t, f = params("n t f")
        guard = Var("b0") >= 2 * t + 1 - f
        assert guard.cmp is Cmp.GE
        assert guard.lhs == (("b0", 1),)
        assert guard.rhs == 2 * t + 1 - f

    def test_lt_guard(self):
        guard = Var("m0") < 1
        assert guard.cmp is Cmp.LT
        assert guard.rhs.evaluate({}) == 1

    def test_gt_desugars_to_ge_plus_one(self):
        guard = Var("cc0") > 0
        assert guard.cmp is Cmp.GE
        assert guard.rhs.evaluate({}) == 1

    def test_sum_lhs(self):
        n, t, f = params("n t f")
        guard = Var("a0") + Var("a1") >= n - t - f
        assert guard.lhs == (("a0", 1), ("a1", 1))

    def test_repeated_variable_accumulates(self):
        guard = Var("v0") + Var("v0") >= 3
        assert guard.lhs == (("v0", 2),)

    def test_sum_rejects_non_variables(self):
        with pytest.raises(TypeError):
            Var("a") + 1  # noqa: B018 - testing the failure


class TestEvaluation:
    def test_ge_semantics(self):
        n, t, f = params("n t f")
        guard = Var("b0") >= 2 * t + 1 - f
        ps = {"n": 4, "t": 1, "f": 1}
        assert guard.evaluate({"b0": 2}, ps)
        assert not guard.evaluate({"b0": 1}, ps)

    def test_lt_semantics(self):
        guard = Var("m0") < 1
        assert guard.evaluate({"m0": 0}, {})
        assert not guard.evaluate({"m0": 1}, {})

    def test_sum_semantics(self):
        n, t, f = params("n t f")
        guard = Var("a0") + Var("a1") >= n - t - f
        ps = {"n": 4, "t": 1, "f": 1}
        assert guard.evaluate({"a0": 1, "a1": 1}, ps)
        assert not guard.evaluate({"a0": 1, "a1": 0}, ps)

    def test_missing_variable_raises(self):
        guard = Var("x") >= 0
        with pytest.raises(SemanticsError):
            guard.evaluate({}, {})

    def test_conjunction_empty_is_true(self):
        assert conjunction_holds((), {}, {})

    def test_conjunction_all_atoms(self):
        g1 = Var("a") >= 1
        g2 = Var("b") < 1
        assert conjunction_holds((g1, g2), {"a": 1, "b": 0}, {})
        assert not conjunction_holds((g1, g2), {"a": 1, "b": 1}, {})


class TestNegation:
    def test_negate_ge(self):
        guard = Var("a") >= 2
        neg = guard.negated()
        assert neg.cmp is Cmp.LT
        for value in range(5):
            assert guard.evaluate({"a": value}, {}) != neg.evaluate({"a": value}, {})

    def test_double_negation_is_identity(self):
        guard = Var("a") + Var("b") < 3
        assert guard.negated().negated() == guard


class TestPresentation:
    def test_str_ge(self):
        n, t, f = params("n t f")
        guard = Var("b0") >= 2 * t + 1 - f
        assert str(guard) == "b0 >= -f + 2*t + 1"

    def test_str_sum(self):
        guard = Var("a0") + Var("a1") >= 2
        assert str(guard) == "a0 + a1 >= 2"

    def test_guards_are_hashable_and_deduplicate(self):
        g1 = Var("a") >= 1
        g2 = Var("a") >= 1
        assert len({g1, g2}) == 1

    def test_variables(self):
        guard = Var("a0") + Var("a1") >= 2
        assert guard.variables() == frozenset({"a0", "a1"})
