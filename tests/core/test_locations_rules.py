"""Unit tests for locations, rules and probabilistic rules."""

from fractions import Fraction

import pytest

from repro.core.guards import Var
from repro.core.locations import (
    LocKind,
    Location,
    border,
    final,
    initial,
    intermediate,
)
from repro.core.rules import ProbRule, Rule, dirac, fair_coin, make_update
from repro.errors import ValidationError


class TestLocations:
    def test_constructors_set_kind(self):
        assert border("J0").kind is LocKind.BORDER
        assert initial("I0").kind is LocKind.INITIAL
        assert intermediate("S").kind is LocKind.INTERMEDIATE
        assert final("E0").kind is LocKind.FINAL

    def test_value_recorded(self):
        assert border("J0", value=0).value == 0
        assert intermediate("S").value is None

    def test_decision_requires_final(self):
        with pytest.raises(ValueError):
            Location("D0", LocKind.INTERMEDIATE, 0, decision=True)

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError):
            Location("X", LocKind.INITIAL, value=2)

    def test_decision_final_ok(self):
        loc = final("D0", value=0, decision=True)
        assert loc.decision


class TestUpdates:
    def test_make_update_canonicalizes(self):
        assert make_update({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_zero_increments_dropped(self):
        assert make_update({"a": 0}) == ()

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            make_update({"a": -1})


class TestRule:
    def test_guard_and_update_variables(self):
        rule = Rule(
            "r", "A", "B",
            guard=(Var("x") >= 1, Var("y") < 2),
            update=make_update({"z": 1}),
        )
        assert rule.guard_variables() == frozenset({"x", "y"})
        assert rule.updated_variables() == frozenset({"z"})

    def test_self_loop(self):
        assert Rule("r", "A", "A").is_self_loop
        assert not Rule("r", "A", "B").is_self_loop

    def test_str(self):
        rule = Rule("r3", "I0", "S0", update=make_update({"b0": 1}))
        assert "r3" in str(rule) and "b0+=1" in str(rule)


class TestProbRule:
    def test_fair_coin_is_half_half(self):
        rule = fair_coin("rb", "I2", "T0", "T1")
        assert rule.probability("T0") == Fraction(1, 2)
        assert rule.probability("T1") == Fraction(1, 2)
        assert rule.probability("elsewhere") == 0
        assert not rule.is_dirac

    def test_dirac_helper(self):
        rule = dirac("ra", "J2", "I2")
        assert rule.is_dirac
        assert rule.probability("I2") == 1

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValidationError):
            ProbRule("r", "A", (("B", Fraction(1, 2)), ("C", Fraction(1, 3))))

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValidationError):
            ProbRule("r", "A", ())

    def test_non_positive_probability_rejected(self):
        with pytest.raises(ValidationError):
            ProbRule("r", "A", (("B", Fraction(0)), ("C", Fraction(1))))

    def test_biased_coin_allowed(self):
        # An epsilon-good (but not strong) coin is a legal distribution.
        rule = ProbRule(
            "r", "A", (("B", Fraction(1, 3)), ("C", Fraction(2, 3)))
        )
        assert rule.probability("C") == Fraction(2, 3)
