"""Unit tests for the combined SystemModel."""

import pytest

from repro.core.coin import standard_coin_automaton
from repro.core.system import SystemModel
from repro.errors import ValidationError
from repro.protocols import mmr14, naive_voting


class TestValidation:
    def test_mmr14_model_valid(self):
        model = mmr14.model()
        model.validate_multi_round()

    def test_variable_space_mismatch_rejected(self):
        bad_coin = standard_coin_automaton(("other",), mmr14.COIN_VARS)
        with pytest.raises(ValidationError):
            SystemModel(
                name="bad",
                environment=mmr14.environment(),
                process=mmr14.automaton(),
                coin=bad_coin,
            )

    def test_unknown_category_rejected(self):
        with pytest.raises(ValidationError):
            SystemModel(
                name="bad",
                environment=naive_voting.model().environment,
                process=naive_voting.automaton(),
                category="D",
            )

    def test_unknown_crusader_location_rejected(self):
        with pytest.raises(ValidationError):
            SystemModel(
                name="bad",
                environment=mmr14.environment(),
                process=mmr14.automaton(),
                coin=standard_coin_automaton(mmr14.SHARED_VARS, mmr14.COIN_VARS),
                category="C",
                crusader_locations={"M0": "nowhere"},
            )

    def test_location_namespace_overlap_rejected(self):
        from repro.core.builder import AutomatonBuilder

        b = AutomatonBuilder("clash")
        b.shared(*mmr14.SHARED_VARS)
        b.coins(*mmr14.COIN_VARS)
        b.initial("J2")  # clashes with the coin automaton
        process = b.build(check=None)
        with pytest.raises(ValidationError):
            SystemModel(
                name="bad",
                environment=mmr14.environment(),
                process=process,
                coin=standard_coin_automaton(mmr14.SHARED_VARS, mmr14.COIN_VARS),
            )


class TestSizes:
    def test_mmr14_paper_size_matches_table2(self):
        # Table II row: MMR14 has |L| = 17, |R| = 29.
        assert mmr14.model().paper_size() == (17, 29)

    def test_combined_size_includes_coin(self):
        locs, rules = mmr14.model().size()
        assert locs == 19 + 6
        assert rules == 31 + 6

    def test_naive_voting_size(self):
        assert naive_voting.model().size() == (5, 4)


class TestTransformedViews:
    def test_single_round_model(self):
        rd = mmr14.model().single_round()
        rd.process.check_single_round_form()
        assert rd.coin is not None
        assert rd.category == "C"

    def test_has_coin(self):
        assert mmr14.model().has_coin
        assert not naive_voting.model().has_coin

    def test_derandomized_view(self):
        np_model = mmr14.model().derandomized()
        assert np_model.coin is None
        assert np_model.coin_np is not None
        assert np_model.coin_np.role == "coin"
