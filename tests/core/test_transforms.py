"""Unit tests for Definition 1, Definition 3 and the Fig. 6 refinement."""

import pytest

from repro.core.coin import standard_coin_automaton
from repro.core.locations import LocKind
from repro.core.transforms import (
    border_copy_name,
    derandomize,
    refine_bca,
    single_round,
    single_round_coin,
)
from repro.errors import ValidationError
from repro.protocols import mmr14

SHARED = mmr14.SHARED_VARS
COINS = mmr14.COIN_VARS


class TestDerandomize:
    def test_branches_become_rules(self):
        coin = standard_coin_automaton(SHARED, COINS)
        ta = derandomize(coin)
        names = {r.name for r in ta.rules}
        assert "rb@T0" in names and "rb@T1" in names
        assert "ra" in names  # Dirac rules keep their name
        # 6 original rules, the toss doubles: 7 non-probabilistic rules.
        assert len(ta.rules) == 7

    def test_role_is_coin(self):
        ta = derandomize(standard_coin_automaton(SHARED, COINS))
        assert ta.role == "coin"

    def test_guards_and_updates_preserved(self):
        ta = derandomize(standard_coin_automaton(SHARED, COINS))
        assert ta.rule("rc").update == (("cc0", 1),)


class TestSingleRound:
    def test_border_copies_created(self):
        rd = single_round(mmr14.automaton())
        copies = {l.name for l in rd.border_copy_locations}
        assert copies == {border_copy_name("J0"), border_copy_name("J1")}

    def test_round_switches_redirected(self):
        rd = single_round(mmr14.automaton())
        assert not rd.round_switch_rules
        rule = rd.rule("rs1")  # E0 -> J0 becomes E0 -> J0__end
        assert rule.target == border_copy_name("J0")

    def test_self_loops_added(self):
        rd = single_round(mmr14.automaton())
        for copy in rd.border_copy_locations:
            loops = [r for r in rd.rules_from(copy.name) if r.is_self_loop]
            assert len(loops) == 1

    def test_form_validates(self):
        rd = single_round(mmr14.automaton())
        rd.check_single_round_form()

    def test_value_preserved_on_copies(self):
        rd = single_round(mmr14.automaton())
        assert rd.location(border_copy_name("J0")).value == 0
        assert rd.location(border_copy_name("J1")).value == 1

    def test_rule_count(self):
        original = mmr14.automaton()
        rd = single_round(original)
        # Same rules (switches redirected) plus one self-loop per border.
        assert len(rd.rules) == len(original.rules) + 2


class TestSingleRoundCoin:
    def test_coin_round_switches_redirected(self):
        coin_rd = single_round_coin(standard_coin_automaton(SHARED, COINS))
        rule = coin_rd.rule("re")
        assert rule.branches[0][0] == border_copy_name("J2")

    def test_toss_still_probabilistic(self):
        coin_rd = single_round_coin(standard_coin_automaton(SHARED, COINS))
        assert not coin_rd.rule("rb").is_dirac

    def test_copy_has_self_loop(self):
        coin_rd = single_round_coin(standard_coin_automaton(SHARED, COINS))
        copy = border_copy_name("J2")
        loops = [
            r for r in coin_rd.rules_from(copy)
            if r.is_dirac and r.branches[0][0] == copy
        ]
        assert len(loops) == 1


class TestRefineBCA:
    def test_structure(self):
        refined = refine_bca(
            mmr14.automaton(), "r21", m0_var="a0", m1_var="a1"
        )
        assert refined.has_location("N0")
        assert refined.has_location("N1")
        assert refined.has_location("Nbot")
        # r21 replaced by three guarded rules plus three exits.
        names = {r.name for r in refined.rules}
        assert "r21" not in names
        for suffix in ("A", "B", "C", "0", "1", "bot"):
            assert f"r21{suffix}" in names

    def test_rule_counts(self):
        original = mmr14.automaton()
        refined = refine_bca(original, "r21", "a0", "a1")
        assert len(refined.rules) == len(original.rules) + 5
        assert len(refined.locations) == len(original.locations) + 3

    def test_guards_refined(self):
        refined = refine_bca(mmr14.automaton(), "r21", "a0", "a1")
        # r21A keeps the original guard and adds m0 > 0.
        original_guard = mmr14.automaton().rule("r21").guard
        assert refined.rule("r21A").guard[: len(original_guard)] == original_guard
        assert len(refined.rule("r21C").guard) == len(original_guard) + 2

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValidationError):
            refine_bca(mmr14.automaton(), "r99", "a0", "a1")

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValidationError):
            refine_bca(mmr14.automaton(), "r21", "nope", "a1")

    def test_existing_location_rejected(self):
        with pytest.raises(ValidationError):
            refine_bca(mmr14.automaton(), "r21", "a0", "a1", n0="M0")

    def test_rule_with_update_rejected(self):
        with pytest.raises(ValidationError):
            refine_bca(mmr14.automaton(), "r3", "a0", "a1")

    def test_refined_still_multi_round_valid(self):
        refined = refine_bca(mmr14.automaton(), "r21", "a0", "a1")
        refined.check_multi_round_form()
