"""Tests for adversaries and Markov-chain sampling."""

import random

import pytest

from repro.counter.actions import Action
from repro.counter.adversary import (
    FifoAdversary,
    RandomAdversary,
    RoundRigidAdversary,
    ScriptedAdversary,
)
from repro.counter.mdp import sample_path
from repro.counter.system import CounterSystem
from repro.protocols import mmr14

VAL = {"n": 4, "t": 1, "f": 1}


@pytest.fixture(scope="module")
def system():
    return CounterSystem(mmr14.model(), VAL)


def uniform_start(system):
    return next(iter(system.initial_configs({"J1": 0})))


class TestAdversaries:
    def test_round_rigid_filters_options(self, system):
        inner = FifoAdversary()
        adversary = RoundRigidAdversary(inner)
        options = [Action("x", 2), Action("y", 0), Action("z", 1)]
        chosen = adversary.choose(system, [], options)
        assert chosen.round == 0

    def test_round_rigid_empty(self, system):
        adversary = RoundRigidAdversary(FifoAdversary())
        assert adversary.choose(system, [], []) is None

    def test_scripted_replays(self, system):
        script = [Action("r1", 0)]
        adversary = ScriptedAdversary(script)
        assert adversary.choose(system, [], script) == script[0]
        assert adversary.choose(system, [], script) is None
        adversary.reset()
        assert adversary.choose(system, [], script) == script[0]

    def test_random_adversary_deterministic_after_reset(self, system):
        adversary = RandomAdversary(seed=5)
        options = [Action(str(i), 0) for i in range(10)]
        first = [adversary.choose(system, [], options) for _ in range(5)]
        adversary.reset()
        second = [adversary.choose(system, [], options) for _ in range(5)]
        assert first == second


class TestSampling:
    def test_uniform_start_decides_zero(self, system):
        """From an all-0 start MMR14 must decide 0 (validity + C2')."""
        config = uniform_start(system)
        d0 = system.loc_index["D0"]
        d1 = system.loc_index["D1"]

        def decided(c):
            return sum(c.counter(k, d0) for k in range(c.rounds)) == 3

        run = sample_path(
            system,
            config,
            RoundRigidAdversary(RandomAdversary(seed=11)),
            random.Random(11),
            max_steps=500,
            stop=decided,
        )
        assert decided(run.last)
        assert all(
            run.last.counter(k, d1) == 0 for k in range(run.last.rounds)
        )

    def test_mixed_start_eventually_decides(self, system):
        """Random schedules + fair coin decide quickly with high probability."""
        config = next(iter(system.initial_configs({"J1": 1})))
        decision_locs = [system.loc_index["D0"], system.loc_index["D1"]]

        def decided(c):
            return any(
                c.counter(k, loc) > 0
                for k in range(c.rounds)
                for loc in decision_locs
            )

        decided_runs = 0
        for seed in range(8):
            run = sample_path(
                system,
                config,
                RoundRigidAdversary(RandomAdversary(seed=seed)),
                random.Random(seed),
                max_steps=2000,
                stop=decided,
            )
            if decided(run.last):
                decided_runs += 1
        # Almost-sure termination: nearly every sampled run decides.
        assert decided_runs >= 6

    def test_sampled_schedule_is_replayable(self, system):
        from repro.counter.schedule import is_applicable

        config = uniform_start(system)
        run = sample_path(
            system,
            config,
            RandomAdversary(seed=3),
            random.Random(3),
            max_steps=60,
        )
        assert is_applicable(system, config, run.schedule())
