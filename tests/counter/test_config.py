"""Unit tests for counter-system configurations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.counter.config import Config
from repro.errors import SemanticsError


def config(kappa, g):
    return Config(tuple(map(tuple, kappa)), tuple(map(tuple, g)))


class TestAccessors:
    def test_counter_and_variable(self):
        c = config([[1, 2]], [[3]])
        assert c.counter(0, 0) == 1
        assert c.counter(0, 1) == 2
        assert c.variable(0, 0) == 3

    def test_unseen_round_reads_zero(self):
        c = config([[1]], [[0]])
        assert c.counter(5, 0) == 0
        assert c.variable(5, 0) == 0

    def test_rounds(self):
        c = config([[1], [0]], [[0], [0]])
        assert c.rounds == 2

    def test_round_population(self):
        c = config([[1, 2], [3, 0]], [[0], [0]])
        assert c.round_population(0) == 3
        assert c.round_population(1) == 3
        assert c.round_population(7) == 0


class TestEnsureRounds:
    def test_extends_with_zeros(self):
        c = config([[1, 2]], [[5]])
        extended = c.ensure_rounds(3)
        assert extended.rounds == 3
        assert extended.kappa[2] == (0, 0)
        assert extended.g[1] == (0,)
        assert extended.counter(0, 1) == 2

    def test_noop_when_enough(self):
        c = config([[1]], [[0]])
        assert c.ensure_rounds(1) is c


class TestBump:
    def test_same_round_move(self):
        c = config([[2, 0]], [[0]])
        moved = c.bump(0, 0, 1, 0, ((0, 1),))
        assert moved.kappa[0] == (1, 1)
        assert moved.g[0] == (1,)

    def test_cross_round_move(self):
        c = config([[1, 0]], [[0]])
        moved = c.bump(0, 0, 1, 1, ())
        assert moved.kappa[0] == (0, 0)
        assert moved.kappa[1] == (0, 1)

    def test_empty_source_rejected(self):
        c = config([[0, 1]], [[0]])
        with pytest.raises(SemanticsError):
            c.bump(0, 0, 1, 0, ())

    def test_original_unchanged(self):
        c = config([[1, 0]], [[0]])
        c.bump(0, 0, 1, 0, ((0, 3),))
        assert c.kappa[0] == (1, 0)
        assert c.g[0] == (0,)

    def test_hashable_and_equal(self):
        a = config([[1, 0]], [[0]])
        b = config([[1, 0]], [[0]])
        assert a == b and hash(a) == hash(b)
        assert a != a.bump(0, 0, 1, 0, ())


@given(
    counts=st.lists(st.integers(0, 5), min_size=2, max_size=5),
    src=st.integers(0, 4),
    dst=st.integers(0, 4),
)
def test_bump_conserves_population(counts, src, dst):
    src %= len(counts)
    dst %= len(counts)
    c = config([counts], [[0]])
    if counts[src] == 0:
        with pytest.raises(SemanticsError):
            c.bump(0, src, dst, 0, ())
        return
    moved = c.bump(0, src, dst, 0, ())
    assert moved.round_population(0) == sum(counts)
