"""Tests for the Theorem 2 side conditions (fair termination, non-blocking)."""

import pytest

from repro.core.builder import AutomatonBuilder
from repro.core.system import SystemModel
from repro.counter.fairness import (
    all_fair_executions_terminate,
    find_progress_cycle,
    is_non_blocking,
)
from repro.counter.system import CounterSystem
from repro.protocols import mmr14, naive_voting


class TestTermination:
    def test_naive_voting_terminates(self):
        system = CounterSystem(naive_voting.model(), {"n": 3, "f": 1})
        assert all_fair_executions_terminate(system)

    def test_mmr14_single_round_terminates(self):
        system = CounterSystem(mmr14.model().single_round(), {"n": 4, "t": 1, "f": 1})
        assert all_fair_executions_terminate(system)

    def test_ping_pong_cycle_detected(self):
        b = AutomatonBuilder("pingpong")
        b.initial("A")
        b.location("B")
        b.rule("go", "A", "B")
        b.rule("back", "B", "A")
        model = SystemModel(
            name="pingpong",
            environment=naive_voting.model().environment,
            process=b.build(check=None),
        )
        system = CounterSystem(model, {"n": 3, "f": 1})
        cycle = find_progress_cycle(system, system.initial_configs())
        assert cycle is not None
        assert len(cycle) >= 2
        assert not all_fair_executions_terminate(system)


class TestNonBlocking:
    def test_mmr14_single_round_non_blocking(self):
        system = CounterSystem(mmr14.model().single_round(), {"n": 4, "t": 1, "f": 1})
        assert is_non_blocking(system)

    def test_blocked_automaton_detected(self):
        b = AutomatonBuilder("stuck")
        b.shared("x")
        b.initial("A")
        b.final("B")
        # Guard can never fire: x is never incremented.
        b.rule("go", "A", "B", guard=b.var("x") >= 1)
        model = SystemModel(
            name="stuck",
            environment=naive_voting.model().environment,
            process=b.build(check=None),
        )
        system = CounterSystem(model, {"n": 3, "f": 1})
        assert not is_non_blocking(system)
