"""Property tests: the flat interned engine matches the seed semantics.

``_SeedConfig`` below is the original nested-tuple implementation the
flat :class:`repro.counter.config.Config` replaced; randomized move
sequences must produce identical observable state through both.
"""

from dataclasses import dataclass
from typing import Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counter.config import Config
from repro.counter.system import CounterSystem
from repro.errors import SemanticsError
from repro.protocols import mmr14, naive_voting

Row = Tuple[int, ...]


@dataclass(frozen=True)
class _SeedConfig:
    """Reference implementation: the seed's nested-tuple configuration."""

    kappa: Tuple[Row, ...]
    g: Tuple[Row, ...]

    @property
    def rounds(self) -> int:
        return len(self.kappa)

    def counter(self, round_no: int, loc_index: int) -> int:
        if round_no >= len(self.kappa):
            return 0
        return self.kappa[round_no][loc_index]

    def variable(self, round_no: int, var_index: int) -> int:
        if round_no >= len(self.g):
            return 0
        return self.g[round_no][var_index]

    def ensure_rounds(self, rounds: int) -> "_SeedConfig":
        if rounds <= self.rounds:
            return self
        width_kappa = len(self.kappa[0]) if self.kappa else 0
        width_g = len(self.g[0]) if self.g else 0
        extra = rounds - self.rounds
        return _SeedConfig(
            self.kappa + ((0,) * width_kappa,) * extra,
            self.g + ((0,) * width_g,) * extra,
        )

    def bump(self, round_no, src_index, dst_index, dst_round, updates):
        base = self.ensure_rounds(max(round_no, dst_round) + 1)
        kappa = [list(row) for row in base.kappa]
        if kappa[round_no][src_index] < 1:
            raise SemanticsError("empty source")
        kappa[round_no][src_index] -= 1
        kappa[dst_round][dst_index] += 1
        if updates:
            g = [list(row) for row in base.g]
            for var_index, increment in updates:
                g[round_no][var_index] += increment
            new_g = tuple(tuple(row) for row in g)
        else:
            new_g = base.g
        return _SeedConfig(tuple(tuple(row) for row in kappa), new_g)


# ---------------------------------------------------------------------------
# Randomized move sequences through both implementations
# ---------------------------------------------------------------------------
moves = st.tuples(
    st.integers(0, 2),   # round_no
    st.integers(0, 2),   # src_index
    st.integers(0, 2),   # dst_index
    st.integers(0, 3),   # dst_round
    st.lists(
        st.tuples(st.integers(0, 1), st.integers(-2, 3)), max_size=2
    ).map(tuple),        # updates (var_index, increment)
)


@settings(max_examples=200, deadline=None)
@given(
    counts=st.lists(st.integers(0, 4), min_size=3, max_size=3),
    values=st.lists(st.integers(0, 3), min_size=2, max_size=2),
    sequence=st.lists(moves, max_size=8),
)
def test_flat_matches_seed_on_random_moves(counts, values, sequence):
    flat = Config((tuple(counts),), (tuple(values),))
    seed = _SeedConfig((tuple(counts),), (tuple(values),))
    for round_no, src, dst, dst_round, updates in sequence:
        flat_err = seed_err = None
        try:
            next_flat = flat.bump(round_no, src, dst, dst_round, updates)
        except (SemanticsError, IndexError) as exc:
            flat_err = type(exc)
        try:
            next_seed = seed.bump(round_no, src, dst, dst_round, updates)
        except (SemanticsError, IndexError) as exc:
            seed_err = type(exc)
        assert flat_err == seed_err
        if flat_err is not None:
            continue
        flat, seed = next_flat, next_seed
        assert flat.rounds == seed.rounds
        assert flat.kappa == seed.kappa
        assert flat.g == seed.g
        for k in range(seed.rounds + 1):
            for i in range(len(counts)):
                assert flat.counter(k, i) == seed.counter(k, i)
            for j in range(len(values)):
                assert flat.variable(k, j) == seed.variable(k, j)


@settings(max_examples=100, deadline=None)
@given(
    counts=st.lists(st.integers(0, 4), min_size=2, max_size=3),
    rounds=st.integers(1, 5),
)
def test_ensure_rounds_matches_seed(counts, rounds):
    flat = Config((tuple(counts),), ((0, 0),))
    seed = _SeedConfig((tuple(counts),), ((0, 0),))
    extended_flat = flat.ensure_rounds(rounds)
    extended_seed = seed.ensure_rounds(rounds)
    assert extended_flat.rounds == extended_seed.rounds
    assert extended_flat.kappa == extended_seed.kappa
    assert extended_flat.g == extended_seed.g
    if rounds <= 1:
        assert extended_flat is flat  # seed no-op contract preserved


@settings(max_examples=100, deadline=None)
@given(
    a_counts=st.lists(st.integers(0, 3), min_size=2, max_size=2),
    b_counts=st.lists(st.integers(0, 3), min_size=2, max_size=2),
)
def test_equality_and_hash_follow_values(a_counts, b_counts):
    a = Config((tuple(a_counts),), ((0,),))
    b = Config((tuple(b_counts),), ((0,),))
    assert (a == b) == (a_counts == b_counts)
    if a == b:
        assert hash(a) == hash(b)


def test_different_round_horizons_stay_distinct():
    # The seed dataclass distinguished (k,) from (k, zero-row); so must we.
    base = Config(((1, 0),), ((0,),))
    extended = base.ensure_rounds(2)
    assert base != extended
    assert extended.counter(1, 0) == 0


def test_layout_widths_distinguish_configs():
    # Same flat cells, different kappa/g split -> different configs.
    a = Config(((1, 2),), ((3,),))       # wk=2, wg=1
    b = Config(((1,),), ((2, 3),))       # wk=1, wg=2
    assert a.data == b.data
    assert a != b


# ---------------------------------------------------------------------------
# Interning
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def system():
    return CounterSystem(mmr14.model(), {"n": 4, "t": 1, "f": 1})


class TestInterning:
    def test_equal_configs_become_pointer_equal(self, system):
        a = system.make_config({"J0": 2, "J1": 1, "J2": 1})
        b = system.make_config({"J1": 1, "J0": 2, "J2": 1})
        assert a is b
        assert a.intern_id >= 0

    def test_apply_interns_successors(self, system):
        from repro.counter.actions import Action

        config = system.make_config({"J0": 3, "J2": 1})
        once = system.apply(config, Action("r1", 0))
        again = system.apply(config, Action("r1", 0))
        assert once is again

    def test_distinct_configs_get_distinct_ids(self, system):
        a = system.make_config({"J0": 3, "J2": 1})
        b = system.make_config({"J1": 3, "J2": 1})
        assert a is not b
        assert a.intern_id != b.intern_id

    def test_foreign_interned_config_cannot_poison_cache(self):
        # Regression: a config first interned by system A used to carry
        # its A-assigned intern_id into system B's successor cache,
        # where it collided with B's own ids and returned the wrong
        # successor groups.  The cache is now keyed by the config
        # itself, so sharing configs across systems is safe.
        val = {"n": 4, "t": 1, "f": 1}
        sys_a = CounterSystem(mmr14.model(), val)
        sys_b = CounterSystem(mmr14.model(), val)
        # Stamp a few intern ids in A first.
        configs_a = list(sys_a.initial_configs())
        for config in configs_a:
            sys_a.successor_groups(config)
        # Feed A's objects to B interleaved with B's own configs.
        foreign = configs_a[-1]
        groups_via_b = sys_b.successor_groups(foreign)
        for config in sys_b.initial_configs():
            expected = [
                action
                for group in sys_b.successor_groups(config)
                for action, _succ in group
            ]
            assert expected == sys_b.enabled_actions(
                config, include_stutters=False
            )
        flattened = [a for group in groups_via_b for a, _s in group]
        assert flattened == sys_b.enabled_actions(foreign, include_stutters=False)

    def test_intern_table_recycles_at_cap(self):
        from repro.counter.program import ProtocolProgram

        # A private program gives a private intern table: the *shared*
        # program's table may already hold every config this loop will
        # touch (it is shared across all systems of the structure), in
        # which case no miss — and therefore no reset — would occur.
        model = naive_voting.model()
        system = CounterSystem(model, {"n": 3, "f": 1},
                               program=ProtocolProgram(model))
        system.INTERN_TABLE_CAP = 4  # force generation resets
        seen = set()
        config = next(system.initial_configs())
        for _ in range(6):
            groups = system.successor_groups(config)
            assert groups  # still enumerates correctly after resets
            config = groups[0][0][1]
            seen.add(config)
            if not system.enabled_actions(config, include_stutters=False):
                break
        assert len(system._intern) <= 4

    def test_successor_groups_flatten_to_enabled_actions(self, system):
        for config in system.initial_configs():
            flattened = [
                action
                for group in system.successor_groups(config)
                for action, _succ in group
            ]
            assert flattened == system.enabled_actions(
                config, include_stutters=False
            )

    def test_successor_groups_match_apply(self, system):
        config = next(system.initial_configs())
        for group in system.successor_groups(config):
            for action, succ in group:
                assert succ is system.apply(config, action)


class TestUncheckedApply:
    def test_matches_checked_apply(self):
        from repro.counter.actions import Action

        system = CounterSystem(naive_voting.model(), {"n": 3, "f": 1})
        config = system.make_config({"I0": 2, "I1": 0})
        rule = system.rules["r1"]
        assert system.apply_unchecked(config, rule, 0) is system.apply(
            config, Action("r1", 0)
        )

    def test_empty_source_still_raises(self):
        system = CounterSystem(naive_voting.model(), {"n": 3, "f": 1})
        config = system.make_config({"I1": 3})
        rule = system.rules["r1"]  # source I0 is empty
        with pytest.raises(SemanticsError):
            system.apply_unchecked(config, rule, 0)
