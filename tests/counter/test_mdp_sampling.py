"""Regression tests for exact branch sampling in the MDP layer.

The seed implementation drew tickets from ``max`` of the branch
denominators instead of their LCM: with branches 1/2 and 1/3 it drew
from 3 tickets and hit the first branch with probability 2/3.  These
tests pin the fixed distribution with a chi-square bound.
"""

import random
from collections import Counter
from fractions import Fraction

from repro.counter.mdp import _sample_branch


class _Rule:
    def __init__(self, branches):
        self.branch_names = tuple(name for name, _ in branches)
        self.branches = tuple((i, prob) for i, (_, prob) in enumerate(branches))


def _chi_square(rule, draws, seed=0):
    rng = random.Random(seed)
    observed = Counter(_sample_branch(rule, rng)[0] for _ in range(draws))
    stat = 0.0
    for name, (_, prob) in zip(rule.branch_names, rule.branches):
        expected = float(prob) * draws
        stat += (observed[name] - expected) ** 2 / expected
    return stat, observed


class TestSampleBranch:
    def test_mixed_denominators_chi_square(self):
        # The seed bug skewed exactly this shape: denominators 2 and 3.
        rule = _Rule([("a", Fraction(1, 2)), ("b", Fraction(1, 3)),
                      ("c", Fraction(1, 6))])
        stat, observed = _chi_square(rule, draws=6000)
        # chi-square critical value, 2 dof, p=0.001.
        assert stat < 13.82, observed

    def test_seed_bug_shape_not_reproduced(self):
        # Under the max-denominator bug, "a" was sampled with p=2/3:
        # 6000 draws gave ~4000 hits.  The fix keeps it near 3000.
        rule = _Rule([("a", Fraction(1, 2)), ("b", Fraction(1, 3)),
                      ("c", Fraction(1, 6))])
        _stat, observed = _chi_square(rule, draws=6000)
        assert observed["a"] < 3400

    def test_uniform_coin_chi_square(self):
        rule = _Rule([("heads", Fraction(1, 2)), ("tails", Fraction(1, 2))])
        stat, observed = _chi_square(rule, draws=4000)
        # 1 dof, p=0.001.
        assert stat < 10.83, observed

    def test_dirac_like_branch_always_chosen(self):
        rule = _Rule([("only", Fraction(1))])
        rng = random.Random(7)
        assert all(_sample_branch(rule, rng) == ("only", 0) for _ in range(50))

    def test_returns_compiled_destination_index(self):
        rule = _Rule([("a", Fraction(1, 2)), ("b", Fraction(1, 2))])
        rng = random.Random(11)
        for _ in range(20):
            name, dst_index = _sample_branch(rule, rng)
            assert rule.branch_names[dst_index] == name

    def test_deterministic_under_fixed_seed(self):
        rule = _Rule([("a", Fraction(1, 4)), ("b", Fraction(3, 4))])
        first = [_sample_branch(rule, random.Random(3)) for _ in range(20)]
        second = [_sample_branch(rule, random.Random(3)) for _ in range(20)]
        assert first == second
