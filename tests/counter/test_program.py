"""The ProtocolProgram / CounterSystem split and the shared caches."""

import random

import pytest

from repro.counter.mdp import _sample_branch, sample_path
from repro.counter.adversary import RandomAdversary
from repro.counter.program import (
    clear_program_cache,
    program_key,
    shared_program,
)
from repro.counter.system import (
    CounterSystem,
    clear_shared_caches,
    shared_system,
)
from repro.protocols import mmr14, naive_voting

VAL = {"n": 4, "t": 1, "f": 1}


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Isolate each test from programs/systems cached by other tests."""
    clear_shared_caches()
    yield
    clear_shared_caches()


class TestProgramKey:
    def test_fresh_factory_instances_share_one_key(self):
        assert program_key(mmr14.model()) == program_key(mmr14.model())

    def test_different_protocols_differ(self):
        assert program_key(mmr14.model()) != program_key(naive_voting.model())

    def test_transformed_model_differs_from_original(self):
        model = mmr14.model()
        assert program_key(model) != program_key(model.single_round())

    def test_key_is_hashable_and_stashed(self):
        model = mmr14.model()
        key = program_key(model)
        hash(key)
        shared_program(model)
        stashed_key, name, environment, process, coin = model.__dict__[
            "_program_key"
        ]
        assert stashed_key == key
        assert name == model.name
        assert environment is model.environment
        assert process is model.process and coin is model.coin

    def test_mutated_model_is_rekeyed_not_served_stale(self):
        model = mmr14.model()
        before = shared_program(model)
        other = naive_voting.model()
        model.process = other.process
        model.coin = None
        after = shared_program(model)
        assert after is not before
        assert after.key == program_key(model)

    def test_reassigned_environment_is_rekeyed(self):
        model = mmr14.model()
        before = shared_program(model)
        model.environment = naive_voting.model().environment
        after = shared_program(model)
        assert after is not before
        assert after.key == program_key(model)


class TestSharedProgram:
    def test_factory_calls_share_one_compiled_program(self):
        assert shared_program(mmr14.model()) is shared_program(mmr14.model())

    def test_all_valuations_share_one_program(self):
        a = CounterSystem(mmr14.model(), VAL)
        b = CounterSystem(mmr14.model(), {"n": 5, "t": 1, "f": 1})
        assert a.program is b.program

    def test_clear_forces_recompilation(self):
        before = shared_program(mmr14.model())
        clear_program_cache()
        assert shared_program(mmr14.model()) is not before

    def test_same_valuation_shares_bound_rules(self):
        a = CounterSystem(mmr14.model(), VAL)
        b = CounterSystem(mmr14.model(), dict(VAL))
        assert a._rule_list is b._rule_list

    def test_thresholds_rebound_per_valuation(self):
        small = CounterSystem(mmr14.model(), VAL)
        large = CounterSystem(mmr14.model(), {"n": 7, "t": 2, "f": 2})
        # r7 guard: b0 >= 2t+1-f -> 2 at (4,1,1), 3 at (7,2,2).
        assert small.rules["r7"].guard[0][2] == 2
        assert large.rules["r7"].guard[0][2] == 3


class TestBindingEquivalence:
    """A bound system behaves exactly like the pre-split compiler did."""

    def test_geometry_and_maps(self):
        system = CounterSystem(mmr14.model(), VAL)
        program = system.program
        assert system.n_locs == program.n_locs == len(system.locations)
        assert system.block == program.n_locs + program.n_vars
        assert system.loc_index is program.loc_index

    def test_rule_order_is_model_order(self):
        model = mmr14.model()
        system = CounterSystem(model, VAL)
        expected = [r.name for r in model.process.rules]
        expected += [r.name for r in model.coin.rules]
        assert list(system.rules) == expected

    def test_program_resting_locations_match_kinds(self):
        from repro.core.locations import LocKind

        system = CounterSystem(mmr14.model().single_round(), VAL)
        expected = {
            index
            for index, loc in enumerate(system.locations)
            if loc.kind in (LocKind.BORDER_COPY, LocKind.FINAL)
        }
        assert system.program.resting_locations == expected

    def test_lottery_matches_branch_probabilities(self):
        system = CounterSystem(mmr14.model(), VAL)
        rule = system.rules["rb"]  # the 1/2-1/2 coin toss
        assert rule.lottery == (2, (1, 2))
        rng = random.Random(5)
        draws = [_sample_branch(rule, rng) for _ in range(40)]
        assert {name for name, _ in draws} == set(rule.branch_names)

    def test_sampling_unchanged_by_lottery_precompute(self):
        """The precompiled lottery draws exactly like the per-step LCM."""

        class _Bare:
            def __init__(self, rule):
                self.branch_names = rule.branch_names
                self.branches = rule.branches
                # no .lottery -> _sample_branch falls back to the LCM path

        system = CounterSystem(mmr14.model(), VAL)
        rule = system.rules["rb"]
        with_lottery = [
            _sample_branch(rule, random.Random(seed)) for seed in range(30)
        ]
        without = [
            _sample_branch(_Bare(rule), random.Random(seed)) for seed in range(30)
        ]
        assert with_lottery == without


class TestSharedSystem:
    def test_same_model_and_valuation_share_a_system(self):
        assert shared_system(mmr14.model(), VAL) is shared_system(
            mmr14.model(), dict(VAL)
        )

    def test_valuations_get_distinct_systems(self):
        a = shared_system(mmr14.model(), VAL)
        b = shared_system(mmr14.model(), {"n": 5, "t": 1, "f": 1})
        assert a is not b
        assert a.program is b.program

    def test_direct_construction_stays_private(self):
        shared = shared_system(mmr14.model(), VAL)
        assert CounterSystem(mmr14.model(), VAL) is not shared

    def test_warm_caches_are_results_neutral(self):
        """Cold and warm systems enumerate identical successor groups."""
        warm = shared_system(mmr14.model(), VAL)
        for config in warm.initial_configs():
            warm.successor_groups(config)
        cold = CounterSystem(mmr14.model(), VAL)
        for w_config, c_config in zip(
            warm.initial_configs(), cold.initial_configs()
        ):
            warm_groups = [
                [action for action, _succ in group]
                for group in warm.successor_groups(w_config)
            ]
            cold_groups = [
                [action for action, _succ in group]
                for group in cold.successor_groups(c_config)
            ]
            assert warm_groups == cold_groups

    def test_mdp_sampling_identical_on_shared_system(self):
        paths = []
        for system in (
            shared_system(mmr14.model(), VAL),
            CounterSystem(mmr14.model(), VAL),
        ):
            config = next(system.initial_configs())
            path = sample_path(
                system, config, RandomAdversary(seed=3), random.Random(3),
                max_steps=120,
            )
            paths.append(path.actions)
        assert paths[0] == paths[1]
