"""Direct unit tests for the Theorem 1 round-rigid reordering.

`tests/counter/test_schedule_reorder.py` drives the theorem on random
schedules; these tests pin the reordering *algorithm* itself on
hand-built instances — stability, idempotence, equivalence of the
reached configuration, and the failure mode on inapplicable input.
"""

import pytest

from repro.counter.actions import Action
from repro.counter.reorder import check_reorder_theorem, round_rigid_reorder
from repro.counter.schedule import Schedule, apply_schedule
from repro.counter.system import CounterSystem
from repro.errors import SemanticsError
from repro.protocols import mmr14

VAL = {"n": 4, "t": 1, "f": 1}


@pytest.fixture(scope="module")
def system():
    return CounterSystem(mmr14.model(), VAL)


class TestRoundRigidReorder:
    def test_empty_schedule(self):
        assert round_rigid_reorder(Schedule(())).actions == ()

    def test_round_rigid_input_is_fixed_point(self):
        rigid = Schedule((Action("a", 0), Action("b", 0), Action("c", 2)))
        assert round_rigid_reorder(rigid).actions == rigid.actions

    def test_idempotent(self):
        loose = Schedule((Action("a", 2), Action("b", 0), Action("c", 1)))
        once = round_rigid_reorder(loose)
        assert round_rigid_reorder(once).actions == once.actions

    def test_stability_preserves_same_round_order(self):
        # Actions of one round keep their relative order — the sort key
        # is (round, original position).
        loose = Schedule((
            Action("x", 1), Action("a", 0), Action("y", 1),
            Action("b", 0), Action("z", 1),
        ))
        reordered = round_rigid_reorder(loose)
        assert [a.rule for a in reordered.actions] == ["a", "b", "x", "y", "z"]

    def test_branch_labels_survive_reordering(self):
        loose = Schedule((Action("rb", 1, "T1"), Action("rb", 0, "T0")))
        reordered = round_rigid_reorder(loose)
        assert reordered.actions == (Action("rb", 0, "T0"), Action("rb", 1, "T1"))


class TestCheckReorderTheorem:
    def test_equivalence_on_multiround_instance(self, system):
        """A hand-built cross-round schedule reorders to the same config."""
        config = next(system.initial_configs({"J1": 0}))
        # Drive one process across the round boundary, then wake a
        # laggard in round 0: E0 requires the full pipeline first.
        prefix = [Action("r1", 0), Action("r1", 0), Action("r3", 0),
                  Action("r3", 0), Action("r7", 0)]
        current = config
        for action in prefix:
            current = system.apply(current, action)
        # Find a round switch to cross into round 1, then interleave a
        # round-0 action after a round-1 action.
        tail = []
        probe = current
        for _ in range(40):
            options = system.enabled_actions(probe, include_stutters=False)
            switch = [a for a in options if a.round == 1]
            if switch:
                round1 = switch[0]
                round0 = [a for a in options if a.round == 0]
                if round0:
                    tail = [round1, round0[0]]
                break
            action = options[0]
            prefix.append(action)
            probe = system.apply(probe, action)
        if not tail:
            pytest.skip("no cross-round interleaving reachable")
        schedule = Schedule(tuple(prefix + tail))
        assert not schedule.is_round_rigid()
        reordered, final = check_reorder_theorem(system, config, schedule)
        assert reordered.is_round_rigid()
        assert final == apply_schedule(system, config, schedule)
        # Same multiset of actions, only the order changed.
        assert sorted(map(str, reordered.actions)) == sorted(
            map(str, schedule.actions)
        )

    def test_rejects_inapplicable_input(self, system):
        config = next(system.initial_configs({"J1": 0}))
        bogus = Schedule((Action("r7", 0),))  # guard b0 >= 2 unmet
        with pytest.raises(SemanticsError, match="not applicable"):
            check_reorder_theorem(system, config, bogus)
