"""Direct unit tests for schedules under round-robin vs adversarial orderings.

The naive-voting model makes the orderings easy to read: every process
broadcasts (``r1``/``r2``) and decides once a majority is visible
(``r3``/``r4``).  A *round-robin* schedule interleaves the processes
fairly; an *adversarial* one drives a single process as far as possible
before anyone else moves.  Counter-system semantics only track counters,
so both orderings of the same action multiset must commute to the same
final configuration — and the `Schedule`/`Path` helpers must report
applicability, prefixes and visited configurations consistently.
"""

import pytest

from repro.counter.actions import Action
from repro.counter.schedule import (
    Schedule,
    apply_schedule,
    is_applicable,
    path,
)
from repro.counter.system import CounterSystem
from repro.errors import SemanticsError
from repro.protocols import naive_voting

VAL = {"n": 3, "f": 1}


@pytest.fixture(scope="module")
def system():
    return CounterSystem(naive_voting.model(), VAL)


def initial(system, placement):
    return system.make_config(placement)


#: Two processes propose 0, none proposes 1 (n - f = 2 modelled).
START = {"I0": 2, "I1": 0}

#: Round-robin: alternate broadcasts, then alternate decisions.
ROUND_ROBIN = Schedule((
    Action("r1", 0), Action("r1", 0),      # each process broadcasts in turn
    Action("r3", 0), Action("r3", 0),      # each decides in turn
))

#: Adversarial: run one process to completion before the other moves.
#: With 2*v0 >= n+1-2f = 2, a single broadcast already unlocks r3.
ADVERSARIAL = Schedule((
    Action("r1", 0), Action("r3", 0),      # first process runs to the end
    Action("r1", 0), Action("r3", 0),      # then the second one
))


class TestOrderings:
    def test_round_robin_is_applicable(self, system):
        assert is_applicable(system, initial(system, START), ROUND_ROBIN)

    def test_adversarial_is_applicable(self, system):
        assert is_applicable(system, initial(system, START), ADVERSARIAL)

    def test_same_action_multiset_reaches_same_config(self, system):
        config = initial(system, START)
        assert apply_schedule(system, config, ROUND_ROBIN) == apply_schedule(
            system, config, ADVERSARIAL
        )

    def test_final_config_decides_everyone(self, system):
        config = initial(system, START)
        final = apply_schedule(system, config, ROUND_ROBIN)
        assert system.counter_of(final, "D0") == 2
        assert system.value_of(final, "v0") == 2

    def test_intermediate_configs_differ_between_orderings(self, system):
        """The orderings commute at the end but not along the way."""
        config = initial(system, START)
        robin = path(system, config, ROUND_ROBIN)
        greedy = path(system, config, ADVERSARIAL)
        assert robin.configs[2] != greedy.configs[2]
        assert robin.last == greedy.last

    def test_premature_decision_is_inapplicable(self, system):
        """Adversarial reordering beyond commutation limits is rejected:
        deciding before any broadcast leaves the guard locked."""
        too_greedy = Schedule((Action("r3", 0), Action("r1", 0)))
        config = initial(system, START)
        assert not is_applicable(system, config, too_greedy)
        with pytest.raises(SemanticsError):
            apply_schedule(system, config, too_greedy)

    def test_mixed_inputs_split_decision(self, system):
        """1 vs 1 inputs with f=1: both decision guards unlock — the
        adversary can split the decisions (the paper's Fig. 2 scenario)."""
        config = initial(system, {"I0": 1, "I1": 1})
        split = Schedule((
            Action("r1", 0), Action("r2", 0),
            Action("r3", 0), Action("r4", 0),
        ))
        final = apply_schedule(system, config, split)
        assert system.counter_of(final, "D0") == 1
        assert system.counter_of(final, "D1") == 1


class TestPathHelpers:
    def test_path_interleaves_configs_and_actions(self, system):
        config = initial(system, START)
        trace = path(system, config, ROUND_ROBIN)
        assert len(trace) == len(ROUND_ROBIN) + 1
        assert trace.first == config
        # Every adjacent pair is one action application.
        for i, action in enumerate(ROUND_ROBIN):
            assert system.apply(trace.configs[i], action) == trace.configs[i + 1]

    def test_schedule_indexing_and_iteration(self):
        schedule = Schedule((Action("a", 0), Action("b", 1)))
        assert schedule[0] == Action("a", 0)
        assert list(schedule) == [Action("a", 0), Action("b", 1)]
        assert len(schedule) == 2

    def test_restriction_and_rounds_used(self):
        schedule = Schedule((Action("a", 0), Action("b", 2), Action("c", 0)))
        assert schedule.rounds_used() == (0, 2)
        assert schedule.restricted_to_round(2).actions == (Action("b", 2),)

    def test_empty_schedule_applies_to_anything(self, system):
        config = initial(system, START)
        assert is_applicable(system, config, Schedule(()))
        assert apply_schedule(system, config, Schedule(())) == config
