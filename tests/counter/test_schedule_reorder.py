"""Tests for schedules, paths and the Theorem 1 reordering."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counter.actions import Action
from repro.counter.reorder import check_reorder_theorem, round_rigid_reorder
from repro.counter.schedule import (
    Schedule,
    apply_schedule,
    is_applicable,
    path,
    random_schedule,
)
from repro.counter.system import CounterSystem
from repro.errors import SemanticsError
from repro.protocols import mmr14

VAL = {"n": 4, "t": 1, "f": 1}


@pytest.fixture(scope="module")
def system():
    return CounterSystem(mmr14.model(), VAL)


def start_config(system):
    return next(iter(system.initial_configs({"J1": 1})))


class TestSchedule:
    def test_round_rigidity_detection(self):
        rigid = Schedule((Action("a", 0), Action("b", 0), Action("c", 1)))
        loose = Schedule((Action("a", 1), Action("b", 0)))
        assert rigid.is_round_rigid()
        assert not loose.is_round_rigid()

    def test_restriction(self):
        s = Schedule((Action("a", 0), Action("b", 1), Action("c", 0)))
        assert s.restricted_to_round(0).actions == (Action("a", 0), Action("c", 0))
        assert s.rounds_used() == (0, 1)

    def test_concat(self):
        s = Schedule((Action("a", 0),)).concat(Schedule((Action("b", 1),)))
        assert len(s) == 2

    def test_applicability_and_path(self, system):
        config = start_config(system)
        schedule = Schedule((Action("r1", 0), Action("r3", 0)))
        assert is_applicable(system, config, schedule)
        trace = path(system, config, schedule)
        assert len(trace) == 3
        assert trace.first == config
        assert system.value_of(trace.last, "b0") == 1

    def test_inapplicable_detected(self, system):
        config = start_config(system)
        schedule = Schedule((Action("r3", 0),))  # nobody in I0 yet
        assert not is_applicable(system, config, schedule)
        with pytest.raises(SemanticsError):
            apply_schedule(system, config, schedule)

    def test_random_schedule_is_applicable(self, system):
        config = start_config(system)
        rng = random.Random(42)
        schedule = random_schedule(system, config, rng, max_steps=30)
        assert is_applicable(system, config, schedule)


class TestReorderTheorem:
    def test_stable_sort_by_round(self):
        schedule = Schedule(
            (Action("a", 1), Action("b", 0), Action("c", 1), Action("d", 0))
        )
        reordered = round_rigid_reorder(schedule)
        assert reordered.actions == (
            Action("b", 0),
            Action("d", 0),
            Action("a", 1),
            Action("c", 1),
        )
        assert reordered.is_round_rigid()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), steps=st.integers(1, 60))
    def test_theorem1_on_random_multiround_schedules(self, seed, steps):
        """Theorem 1: reordering applies and reaches the same config."""
        system = CounterSystem(mmr14.model(), VAL)
        config = start_config(system)
        rng = random.Random(seed)
        schedule = random_schedule(system, config, rng, max_steps=steps)
        reordered, final = check_reorder_theorem(system, config, schedule)
        assert reordered.is_round_rigid()
        assert final == apply_schedule(system, config, schedule)

    def test_multiround_instance(self, system):
        """Drive one process across the round boundary, then reorder."""
        config = start_config(system)
        rng = random.Random(7)
        # Keep sampling until the schedule genuinely spans two rounds.
        for attempt in range(50):
            schedule = random_schedule(system, config, rng, max_steps=120)
            if len(schedule.rounds_used()) >= 2:
                break
        else:
            pytest.skip("no multi-round schedule sampled")
        check_reorder_theorem(system, config, schedule)
