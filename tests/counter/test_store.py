"""The persistent state-graph store and the shared intern tables.

Two invariants rule everything here:

* **results-neutral** — warm-from-disk systems reproduce cold verdicts
  and ``states_explored`` bit-identically (a stored graph is exactly
  what cold expansion produces, entry order included);
* **best-effort** — any bad entry (truncated, hand-edited, stale code
  version, wrong valuation) or disk failure degrades to a cold miss,
  never a crash.
"""

import os
import time
from pathlib import Path

import pytest

from repro.checker.explicit import ExplicitChecker
from repro.counter.program import ProtocolProgram, shared_program
from repro.counter.store import (
    GraphStore,
    LocalDirBackend,
    SQLiteBackend,
    activate_graph_store,
    active_graph_store,
    as_backend,
    compact_backend,
    deactivate_graph_store,
    key_version,
    program_digest,
    valuation_digest,
)
from repro.counter.system import (
    CounterSystem,
    clear_shared_caches,
    flush_shared_graphs,
    shared_system,
)
from repro.protocols import cc85, ks16, naive_voting
from repro.spec.obligations import obligations_for

VAL_A = {"n": 4, "t": 1, "f": 1}
VAL_B = {"n": 5, "t": 1, "f": 1}


@pytest.fixture(autouse=True)
def _no_leaked_store():
    """Tests activate stores; none may leak into the rest of the suite."""
    previous = active_graph_store()
    deactivate_graph_store()
    yield
    deactivate_graph_store(previous)


def _explore(system, limit=200):
    """Expand a breadth-first prefix so the caches hold something real."""
    frontier = list(system.initial_configs())
    seen = set(frontier)
    while frontier and len(seen) < limit:
        config = frontier.pop()
        system.rule_options(config)
        for group in system.successor_groups(config):
            for _action, successor in group:
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
    return seen


def _verdicts(model, valuation, target="validity"):
    checker = ExplicitChecker(model, valuation, max_states=150_000)
    report = checker.check_obligations(obligations_for(checker.model, target))
    return {
        "queries": [[r.query, r.verdict, r.states_explored]
                    for r in report.results],
        "sides": dict(report.side_conditions),
    }


class TestInternSharing:
    def test_one_intern_table_per_program_across_valuations(self):
        model = cc85.model_a()
        sys_a = CounterSystem(model, VAL_A)
        sys_b = CounterSystem(cc85.model_a(), VAL_B)
        assert sys_a.program is sys_b.program
        assert sys_a._intern is sys_b._intern
        # A config reached under either valuation canonicalises once.
        config = next(sys_a.initial_configs())
        assert sys_b.intern(config) is config

    def test_successor_caches_stay_per_valuation(self):
        sys_a = CounterSystem(cc85.model_a(), VAL_A)
        sys_b = CounterSystem(cc85.model_a(), VAL_B)
        assert sys_a._succ_cache is not sys_b._succ_cache

    def test_shared_table_keeps_per_valuation_results_bit_identical(self):
        # The same protocol under two valuations, interning into ONE
        # shared table, must reproduce what fully-private systems (own
        # program, own table) compute.
        for valuation in (VAL_A, VAL_B):
            model = cc85.model_a()
            private = _verdicts_private(model, valuation)
            assert _verdicts(cc85.model_a(), valuation) == private

    def test_private_intern_table_opts_out_of_sharing(self):
        # The parameterized checker's counterexample replay uses this:
        # throwaway valuations must not pin configs in (or ever reset)
        # the program-lifetime shared table.
        from repro.counter.store import InternTable

        model = cc85.model_a()
        shared = CounterSystem(model, VAL_A)
        private = CounterSystem(cc85.model_a(), VAL_A,
                                intern_table=InternTable())
        assert shared.program is private.program
        assert private._intern is not shared.program.intern_table.table
        before = len(shared.program.intern_table)
        list(private.initial_configs())
        assert len(shared.program.intern_table) == before

    def test_replay_systems_do_not_touch_the_shared_table(self):
        from repro.checker.parameterized import ParameterizedChecker
        from repro.counter.program import shared_program

        model = cc85.model_a()
        checker = ParameterizedChecker(model)
        table = shared_program(checker.model).intern_table
        before = len(table)
        assert checker._replay.__doc__  # the contract lives in the doc
        # Drive a replay through a decoded-valuation-shaped call.
        from repro.spec.obligations import obligations_for

        query = obligations_for(checker.model, "validity").reach_queries[0]
        checker._replay(query, VAL_A, {}, ())
        assert len(table) == before

    def test_generation_reset_clears_every_dependents_caches(self):
        model = naive_voting.model()
        program = ProtocolProgram(model)
        sys_a = CounterSystem(model, {"n": 3, "f": 1}, program=program)
        sys_b = CounterSystem(model, {"n": 4, "f": 1}, program=program)
        for system in (sys_a, sys_b):
            _explore(system, limit=10)
        assert sys_a._succ_cache and sys_b._succ_cache
        program.intern_table.reset()
        assert not sys_a._succ_cache and not sys_b._succ_cache
        assert len(program.intern_table) == 0
        # ... and both still enumerate correctly afterwards.
        assert _explore(sys_a, limit=5)


def _verdicts_private(model, valuation, target="validity"):
    """Cold verdicts on a fully private system (no shared caches)."""
    checker = ExplicitChecker(model, valuation, max_states=150_000)
    checker.system = CounterSystem(
        checker.model, valuation, program=ProtocolProgram(checker.model)
    )
    report = checker.check_obligations(obligations_for(checker.model, target))
    return {
        "queries": [[r.query, r.verdict, r.states_explored]
                    for r in report.results],
        "sides": dict(report.side_conditions),
    }


class TestGraphStoreRoundTrip:
    def test_flush_and_load_rebuild_the_exact_graph(self, tmp_path):
        store = GraphStore(tmp_path, version="v1")
        model = ks16.model()
        warm = CounterSystem(model, VAL_A)
        _explore(warm)
        assert store.flush(warm)

        cold = CounterSystem(model, VAL_A, program=ProtocolProgram(model))
        cold_store = GraphStore(tmp_path, version="v1")
        # Same program structure → same key, despite the private object.
        assert cold_store.path_for(cold) == store.path_for(warm)
        assert cold_store.load_into(cold)
        assert cold_store.load_hits == 1
        assert len(cold._succ_cache) == len(warm._succ_cache)
        assert len(cold._options_cache) == len(warm._options_cache)
        for config, groups in warm._succ_cache.items():
            rebuilt = cold._succ_cache[config]
            assert len(rebuilt) == len(groups)
            for group, rebuilt_group in zip(groups, rebuilt):
                assert [a for a, _s in group] == [a for a, _s in rebuilt_group]
                assert [s for _a, s in group] == [s for _a, s in rebuilt_group]
        for config, options in warm._options_cache.items():
            assert cold._options_cache[config] == options

    def test_loaded_successors_are_interned(self, tmp_path):
        store = GraphStore(tmp_path, version="v1")
        model = ks16.model()
        warm = CounterSystem(model, VAL_A)
        _explore(warm)
        store.flush(warm)
        cold = CounterSystem(model, VAL_A, program=ProtocolProgram(model))
        GraphStore(tmp_path, version="v1").load_into(cold)
        for config, groups in cold._succ_cache.items():
            assert cold.intern(config) is config
            for _action, successor in groups[0] if groups else ():
                assert cold.intern(successor) is successor

    def test_unchanged_graph_is_not_rewritten(self, tmp_path):
        store = GraphStore(tmp_path, version="v1")
        system = CounterSystem(ks16.model(), VAL_A)
        _explore(system)
        assert store.flush(system)
        assert not store.flush(system), "unchanged graph must be skipped"
        _explore(system, limit=400)
        assert store.flush(system), "a grown graph must be re-persisted"

    def test_empty_system_is_not_persisted(self, tmp_path):
        store = GraphStore(tmp_path, version="v1")
        system = CounterSystem(ks16.model(), VAL_A)
        assert not store.flush(system)
        assert GraphStore.entries(tmp_path) == []


class TestColdMisses:
    def _stored(self, tmp_path, version="v1"):
        store = GraphStore(tmp_path, version=version)
        model = ks16.model()
        system = CounterSystem(model, VAL_A)
        _explore(system)
        store.flush(system)
        (path,) = GraphStore.entries(tmp_path)
        return model, path

    def _fresh(self, model):
        return CounterSystem(model, VAL_A, program=ProtocolProgram(model))

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = GraphStore(tmp_path, version="v1")
        assert not store.load_into(self._fresh(ks16.model()))
        assert store.load_misses == 1

    def test_truncated_entry_is_a_miss(self, tmp_path):
        model, path = self._stored(tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        store = GraphStore(tmp_path, version="v1")
        system = self._fresh(model)
        assert not store.load_into(system)
        assert not system._succ_cache and not system._options_cache

    def test_hand_edited_body_is_a_miss(self, tmp_path):
        model, path = self._stored(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-10] ^= 0xFF  # flip a byte deep in the pickled body
        path.write_bytes(bytes(raw))
        store = GraphStore(tmp_path, version="v1")
        assert not store.load_into(self._fresh(model))
        assert store.errors == 1

    def test_hand_edited_header_is_a_miss(self, tmp_path):
        model, path = self._stored(tmp_path)
        head, _, body = path.read_bytes().partition(b"\n")
        path.write_bytes(head.replace(b'"block": ', b'"block": 9') + b"\n" + body)
        store = GraphStore(tmp_path, version="v1")
        assert not store.load_into(self._fresh(model))

    def test_malicious_pickle_payload_is_refused_not_executed(self, tmp_path):
        # A crafted entry can carry a *valid* checksum over a payload
        # whose pickle smuggles a callable; the restricted unpickler
        # must refuse the class lookup (cold miss), never execute it.
        import hashlib
        import json
        import pickle

        model, path = self._stored(tmp_path)
        sentinel = tmp_path / "pwned"

        class Evil:
            def __reduce__(self):
                return (Path.touch, (sentinel,))

        body = pickle.dumps({"configs": Evil(), "succ": (), "options": ()})
        head, _, _old = path.read_bytes().partition(b"\n")
        magic, fmt, header_json = head.decode().split(" ", 2)
        header = json.loads(header_json)
        header["body_sha256"] = hashlib.sha256(body).hexdigest()
        path.write_bytes(
            f"{magic} {fmt} {json.dumps(header, sort_keys=True)}\n".encode()
            + body
        )
        store = GraphStore(tmp_path, version="v1")
        system = self._fresh(model)
        assert not store.load_into(system)
        assert not sentinel.exists(), "pickle payload was executed"
        assert not system._succ_cache

    def test_changed_code_version_is_a_miss(self, tmp_path):
        model, _path = self._stored(tmp_path, version="v1")
        store = GraphStore(tmp_path, version="v2")
        system = self._fresh(model)
        assert not store.load_into(system)
        assert not system._succ_cache
        # ... and the stale entry stays for the old version to use.
        assert len(GraphStore.entries(tmp_path)) == 1

    def test_wrong_valuation_never_matches(self, tmp_path):
        model, _path = self._stored(tmp_path)
        store = GraphStore(tmp_path, version="v1")
        other = CounterSystem(model, VAL_B, program=ProtocolProgram(model))
        assert not store.load_into(other)

    def test_miss_then_cold_run_is_still_correct(self, tmp_path):
        model, path = self._stored(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x5A
        path.write_bytes(bytes(raw))
        clear_shared_caches()
        previous = activate_graph_store(tmp_path, version="v1")
        try:
            observed = _verdicts(ks16.model(), VAL_A)
        finally:
            deactivate_graph_store(previous)
        clear_shared_caches()
        assert observed == _verdicts(ks16.model(), VAL_A)


class TestBestEffortIO:
    def test_flush_survives_disk_failure(self, tmp_path, monkeypatch):
        store = GraphStore(tmp_path, version="v1")
        system = CounterSystem(ks16.model(), VAL_A)
        _explore(system)
        monkeypatch.setattr(
            Path, "write_bytes",
            lambda self, data: (_ for _ in ()).throw(OSError(28, "no space")),
        )
        assert not store.flush(system)  # must not raise
        assert store.errors == 1
        assert isinstance(store.last_error, OSError)
        assert list(tmp_path.glob("*.tmp")) == []

    def test_stale_temp_orphans_pruned_on_init(self, tmp_path):
        stale = tmp_path / "x.graph.99.dead.tmp"
        stale.write_bytes(b"partial")
        ancient = time.time() - 3600
        os.utime(stale, (ancient, ancient))
        fresh = tmp_path / "y.graph.100.beef.tmp"
        fresh.write_bytes(b"live")
        GraphStore(tmp_path)
        assert not stale.exists()
        assert fresh.exists()


class TestResultNeutrality:
    """Warm-from-disk checking reproduces cold runs bit-for-bit."""

    PROTOCOL_MODELS = (cc85.model_a, ks16.model)

    def test_warm_from_disk_verdicts_and_states_match_cold(self, tmp_path):
        cold = {}
        clear_shared_caches()
        for factory in self.PROTOCOL_MODELS:
            for target in ("agreement", "validity"):
                cold[(factory.__module__, target)] = _verdicts(
                    factory(), VAL_A, target
                )

        # Populate the store (cold, store active), then drop every
        # in-process cache — the next run is a fresh process as far as
        # the engine can tell — and re-check warm from disk.
        clear_shared_caches()
        previous = activate_graph_store(tmp_path)
        try:
            for factory in self.PROTOCOL_MODELS:
                for target in ("agreement", "validity"):
                    _verdicts(factory(), VAL_A, target)
            flush_shared_graphs()
            assert GraphStore.entries(tmp_path)

            clear_shared_caches()
            store = active_graph_store()
            hits_before = store.load_hits
            for factory in self.PROTOCOL_MODELS:
                for target in ("agreement", "validity"):
                    warm = _verdicts(factory(), VAL_A, target)
                    assert warm == cold[(factory.__module__, target)]
            assert store.load_hits > hits_before, "store was never hit"
        finally:
            deactivate_graph_store(previous)
            clear_shared_caches()

    def test_flush_only_covers_adopted_systems(self, tmp_path):
        # A warm system left over from an earlier (store-less) run must
        # not leak into a later run's store: only systems served while
        # the store was active are flushed.
        clear_shared_caches()
        leftover = shared_system(cc85.model_a(), VAL_A)  # no store active
        _explore(leftover)
        previous = activate_graph_store(tmp_path)
        try:
            current = shared_system(ks16.model(), VAL_A)
            _explore(current)
            flush_shared_graphs()
            entries = GraphStore.entries(tmp_path)
            assert len(entries) == 1
            assert entries[0].name.startswith("ks16")
        finally:
            deactivate_graph_store(previous)
            clear_shared_caches()

    def test_shared_system_loads_from_active_store(self, tmp_path):
        clear_shared_caches()
        previous = activate_graph_store(tmp_path)
        try:
            model = ks16.model()
            warm = shared_system(model, VAL_A)
            _explore(warm)
            flush_shared_graphs()
            clear_shared_caches()
            reborn = shared_system(ks16.model(), VAL_A)
            assert reborn._succ_cache, "fresh shared system should be warm"
        finally:
            deactivate_graph_store(previous)
            clear_shared_caches()


@pytest.fixture(params=["dir", "sqlite"])
def backend_spec(request, tmp_path):
    """One spec per shipped backend; both speak the same entry contract."""
    if request.param == "dir":
        return str(tmp_path / "graphs")
    return f"sqlite:{tmp_path / 'graphs.db'}"


def _caches_equal(a, b) -> bool:
    """Structural equality of two systems' succ/option caches."""
    if set(a._succ_cache) != set(b._succ_cache):
        return False
    for config, groups in a._succ_cache.items():
        other = b._succ_cache[config]
        if [[(x, s) for x, s in g] for g in groups] != \
                [[(x, s) for x, s in g] for g in other]:
            return False
    return dict(a._options_cache) == dict(b._options_cache)


def _fresh_system(model, valuation=VAL_A):
    return CounterSystem(model, valuation, program=ProtocolProgram(model))


class TestBackends:
    """Both backends round-trip, append deltas, and compact identically."""

    def test_round_trip(self, backend_spec):
        store = GraphStore(backend_spec, version="v1")
        model = ks16.model()
        warm = CounterSystem(model, VAL_A)
        _explore(warm)
        assert store.flush(warm)
        cold = _fresh_system(model)
        reader = GraphStore(backend_spec, version="v1")
        assert reader.load_into(cold)
        assert _caches_equal(warm, cold)

    def test_delta_flush_appends_only_growth(self, backend_spec):
        store = GraphStore(backend_spec, version="v1")
        model = ks16.model()
        system = CounterSystem(model, VAL_A)
        _explore(system, limit=40)
        assert store.flush(system)
        first_bytes = store.bytes_written
        _explore(system, limit=400)
        assert store.flush(system)
        delta_bytes = store.bytes_written - first_bytes
        # The second segment holds only the growth — far smaller than
        # re-serializing the whole (now much larger) graph would be.
        full_blob = store._serialize(system)
        assert delta_bytes < len(full_blob)
        key = store.key_for(system)
        assert store.backend.stats()[key][0] == 2
        # Merge-on-load equals the union of both segments.
        cold = _fresh_system(model)
        assert GraphStore(backend_spec, version="v1").load_into(cold)
        assert _caches_equal(system, cold)

    def test_load_then_grow_flushes_delta_only(self, backend_spec):
        model = ks16.model()
        seed = CounterSystem(model, VAL_A)
        _explore(seed, limit=40)
        store = GraphStore(backend_spec, version="v1")
        assert store.flush(seed)
        # A fresh process loads the graph, explores further, and only
        # the growth beyond the loaded baseline is appended.
        warmed = _fresh_system(model)
        reader = GraphStore(backend_spec, version="v1")
        assert reader.load_into(warmed)
        assert not reader.flush(warmed), "just-loaded graph is unchanged"
        _explore(warmed, limit=400)
        assert reader.flush(warmed)
        header = GraphStore.describe_blob(
            reader.backend.read_segments(reader.key_for(warmed))[-1][1]
        )
        assert header["segment"] != [0, 0], "expected a delta segment"
        cold = _fresh_system(model)
        assert GraphStore(backend_spec, version="v1").load_into(cold)
        assert _caches_equal(warmed, cold)

    def test_reborn_system_never_inherits_a_foreign_baseline(
        self, backend_spec
    ):
        # A new system instance under the same key must never inherit a
        # baseline measured on someone else's caches (that would drop
        # entries from the delta).  Its full serialization is either
        # already covered by storage (skip — nothing to add) or gets
        # appended whole; in both cases the stored union stays intact.
        model = ks16.model()
        store = GraphStore(backend_spec, version="v1")
        first = CounterSystem(model, VAL_A)
        _explore(first, limit=200)
        assert store.flush(first)
        reborn = _fresh_system(model)
        _explore(reborn, limit=40)
        # The reborn system's 40-entry prefix is a subset of what the
        # first system persisted: covered, so nothing is appended...
        assert not store.flush(reborn)
        key = store.key_for(reborn)
        assert store.backend.stats()[key][0] == 1
        # ... but the covered flush established a baseline, so growth
        # beyond it appends a delta and the union survives.
        _explore(reborn, limit=500)
        assert store.flush(reborn)
        cold = _fresh_system(model)
        assert GraphStore(backend_spec, version="v1").load_into(cold)
        assert set(first._succ_cache) <= set(cold._succ_cache)
        assert set(reborn._succ_cache) <= set(cold._succ_cache)

    def test_compact_squashes_segments_and_preserves_graph(self, backend_spec):
        store = GraphStore(backend_spec, version="v1")
        model = ks16.model()
        system = CounterSystem(model, VAL_A)
        for limit in (30, 120, 400):
            _explore(system, limit=limit)
            store.flush(system)
        key = store.key_for(system)
        assert store.backend.stats()[key][0] == 3
        stats = compact_backend(store.backend)
        assert stats["compacted"] == 1 and stats["errors"] == 0
        assert store.backend.stats()[key][0] == 1
        cold = _fresh_system(model)
        assert GraphStore(backend_spec, version="v1").load_into(cold)
        assert _caches_equal(system, cold)

    def test_compact_is_idempotent(self, backend_spec):
        store = GraphStore(backend_spec, version="v1")
        system = CounterSystem(ks16.model(), VAL_A)
        _explore(system, limit=60)
        store.flush(system)
        _explore(system, limit=200)
        store.flush(system)
        first = compact_backend(store.backend)
        second = compact_backend(store.backend)
        assert first["compacted"] == 1
        assert second["compacted"] == 0, "already-canonical keys are skipped"
        assert second["segments_before"] == second["segments_after"] == 1

    def test_reactivated_store_does_not_duplicate_full_segments(
        self, backend_spec
    ):
        # A warm system meeting a freshly constructed store over a
        # corpus its previous activation wrote (notebook/driver loop)
        # must not append one duplicate snapshot per activation.
        model = ks16.model()
        system = CounterSystem(model, VAL_A)
        _explore(system, limit=200)
        first = GraphStore(backend_spec, version="v1")
        assert first.flush(system)
        key = first.key_for(system)
        second = GraphStore(backend_spec, version="v1")
        assert not second.flush(system), "identical body must dedup"
        assert second.backend.stats()[key][0] == 1
        # ... and the deduped flush still established a delta baseline.
        _explore(system, limit=400)
        assert second.flush(system)
        header = GraphStore.describe_blob(
            second.backend.read_segments(key)[-1][1]
        )
        assert header["segment"] != [0, 0], "expected a delta segment"
        cold = _fresh_system(model)
        assert GraphStore(backend_spec, version="v1").load_into(cold)
        assert _caches_equal(system, cold)
        # A key stored as full+delta must dedup too (union coverage,
        # not just a byte-identical single segment): yet another store
        # activation over the unchanged warm system appends nothing.
        segments_now = second.backend.stats()[key][0]
        third = GraphStore(backend_spec, version="v1")
        assert not third.flush(system)
        assert third.backend.stats()[key][0] == segments_now
        # ... while genuinely new growth still gets appended.
        _explore(system, limit=700)
        assert third.flush(system)

    def test_snapshot_mode_rewrites_whole_graph(self, backend_spec):
        # The PR 4 emulation the benchmark compares against: every
        # flush serializes from zero and replaces prior segments.
        store = GraphStore(backend_spec, version="v1", snapshot_mode=True)
        model = ks16.model()
        system = CounterSystem(model, VAL_A)
        _explore(system, limit=40)
        assert store.flush(system)
        _explore(system, limit=400)
        assert store.flush(system)
        key = store.key_for(system)
        assert store.backend.stats()[key][0] == 1
        delta = GraphStore(backend_spec + "-delta"
                           if not backend_spec.startswith("sqlite:")
                           else backend_spec + "2", version="v1")
        other = _fresh_system(model)
        _explore(other, limit=40)
        delta.flush(other)
        _explore(other, limit=400)
        delta.flush(other)
        assert delta.bytes_written < store.bytes_written
        cold = _fresh_system(model)
        assert GraphStore(backend_spec, version="v1").load_into(cold)
        assert _caches_equal(system, cold)


class TestCorruptSegments:
    def _segmented(self, tmp_path):
        store = GraphStore(tmp_path, version="v1")
        model = ks16.model()
        system = CounterSystem(model, VAL_A)
        _explore(system, limit=40)
        store.flush(system)
        _explore(system, limit=300)
        store.flush(system)
        return model, store

    def test_one_corrupt_segment_poisons_the_key(self, tmp_path):
        model, store = self._segmented(tmp_path)
        paths = GraphStore.entries(tmp_path)
        assert len(paths) == 2
        raw = bytearray(paths[-1].read_bytes())
        raw[-5] ^= 0xFF
        paths[-1].write_bytes(bytes(raw))
        cold = _fresh_system(model)
        reader = GraphStore(tmp_path, version="v1")
        assert not reader.load_into(cold)
        assert not cold._succ_cache, "poisoned key must be a full cold miss"

    def test_compact_repairs_a_poisoned_key(self, tmp_path):
        model, store = self._segmented(tmp_path)
        paths = GraphStore.entries(tmp_path)
        raw = bytearray(paths[-1].read_bytes())
        raw[-5] ^= 0xFF
        paths[-1].write_bytes(bytes(raw))
        stats = compact_backend(LocalDirBackend(tmp_path))
        assert stats["corrupt_dropped"] == 1
        cold = _fresh_system(model)
        assert GraphStore(tmp_path, version="v1").load_into(cold)
        assert cold._succ_cache, "surviving segment must load after repair"

    def test_compact_deletes_fully_corrupt_keys(self, tmp_path):
        _model, _store = self._segmented(tmp_path)
        for path in GraphStore.entries(tmp_path):
            path.write_bytes(b"garbage")
        stats = compact_backend(LocalDirBackend(tmp_path))
        assert stats["corrupt_dropped"] == 2
        assert GraphStore.entries(tmp_path) == []

    def test_compact_repairs_a_single_corrupt_segment(self, tmp_path):
        # The single-segment fast path must not skip validation: a key
        # whose ONLY segment is corrupt would otherwise cold-miss
        # forever while compact reports the store clean.
        store = GraphStore(tmp_path, version="v1")
        system = CounterSystem(ks16.model(), VAL_A)
        _explore(system, limit=60)
        store.flush(system)
        (path,) = GraphStore.entries(tmp_path)
        path.write_bytes(b"repro-graph garbage")
        stats = compact_backend(LocalDirBackend(tmp_path))
        assert stats["corrupt_dropped"] == 1
        assert GraphStore.entries(tmp_path) == []
        # ... and on the canonical-free SQLite backend too.
        db = GraphStore(f"sqlite:{tmp_path / 'g.db'}", version="v1")
        db.backend.append_segment("some-key-xx-v1", b"garbage")
        stats = compact_backend(db.backend)
        assert stats["corrupt_dropped"] == 1
        assert db.backend.keys() == []


class TestBackendSpecs:
    def test_as_backend_resolves_dirs_and_uris(self, tmp_path):
        local = as_backend(tmp_path / "x")
        assert isinstance(local, LocalDirBackend)
        db = as_backend(f"sqlite:{tmp_path / 'g.db'}")
        assert isinstance(db, SQLiteBackend)
        assert db.path == str(tmp_path / "g.db")
        slashed = as_backend(f"sqlite://{tmp_path / 'h.db'}")
        assert slashed.path == str(tmp_path / "h.db")

    def test_spec_round_trips(self, tmp_path):
        for spec in (str(tmp_path / "graphs"), f"sqlite:{tmp_path / 'g.db'}"):
            backend = as_backend(spec)
            again = as_backend(backend.spec)
            assert type(again) is type(backend)
            assert again.spec == backend.spec

    def test_backend_instance_passes_through(self, tmp_path):
        backend = LocalDirBackend(tmp_path)
        assert as_backend(backend) is backend
        store = GraphStore(backend, version="v1")
        assert store.backend is backend
        assert store.root == Path(tmp_path)

    def test_sqlite_store_has_no_root(self, tmp_path):
        store = GraphStore(f"sqlite:{tmp_path / 'g.db'}", version="v1")
        assert store.root is None

    def test_key_version_parses(self):
        assert key_version("m-aaaa-bbbb-v123") == "v123"
        assert key_version("nonsense") is None


class TestSQLiteResilience:
    def test_locked_database_is_a_recorded_miss_not_a_crash(self, tmp_path):
        import sqlite3 as sql

        db = tmp_path / "g.db"
        store = GraphStore(f"sqlite:{db}", version="v1")
        system = CounterSystem(ks16.model(), VAL_A)
        _explore(system, limit=40)
        assert store.flush(system)
        # A second connection holding the write lock blocks our INSERT
        # (WAL allows concurrent readers, never concurrent writers);
        # with the timeout and retries floored, flush must degrade to a
        # recorded error instead of raising or hanging.
        store.backend.BUSY_TIMEOUT_MS = 1
        store.backend.RETRIES = 1
        store.backend.close()
        blocker = sql.connect(db, isolation_level=None)
        blocker.execute("BEGIN IMMEDIATE")
        try:
            _explore(system, limit=400)
            assert not store.flush(system)  # must not raise
            assert store.errors >= 1
        finally:
            blocker.execute("ROLLBACK")
            blocker.close()

    def test_fresh_readonly_info_of_missing_db(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "missing.db")
        assert backend.keys() == []
        assert backend.stats() == {}

    def test_inherited_connection_is_disowned_not_closed(self, tmp_path):
        # A handle inherited across fork must be parked, never closed:
        # finalizing it in the child would run sqlite3_close on a WAL
        # database the parent still writes.  Simulate the child by
        # faking a pid mismatch.
        backend = SQLiteBackend(tmp_path / "g.db")
        backend.keys()
        conn = backend._conn
        assert conn is not None
        backend._conn_pid = (backend._conn_pid or 0) + 1
        before = len(SQLiteBackend._FORK_GRAVEYARD)
        backend.close()
        assert backend._conn is None
        assert len(SQLiteBackend._FORK_GRAVEYARD) == before + 1
        assert SQLiteBackend._FORK_GRAVEYARD[-1] is conn
        conn.execute("SELECT 1")  # parked handle was never closed


class TestKeying:
    def test_program_digest_stable_across_instances(self):
        assert program_digest(ProtocolProgram(ks16.model())) == program_digest(
            ProtocolProgram(ks16.model())
        )
        assert program_digest(ProtocolProgram(ks16.model())) != program_digest(
            ProtocolProgram(cc85.model_a())
        )

    def test_valuation_digest_orders_canonically(self):
        assert valuation_digest({"n": 4, "t": 1, "f": 1}) == valuation_digest(
            {"f": 1, "t": 1, "n": 4}
        )
        assert valuation_digest(VAL_A) != valuation_digest(VAL_B)

    def test_entry_version_parses_from_file_name(self, tmp_path):
        store = GraphStore(tmp_path, version="cafebabe00000000")
        system = CounterSystem(ks16.model(), VAL_A)
        _explore(system)
        store.flush(system)
        (path,) = GraphStore.entries(tmp_path)
        assert GraphStore.entry_version(path) == "cafebabe00000000"
        header = GraphStore.describe(path)
        assert header["code_version"] == "cafebabe00000000"
        assert header["configs"] == len(
            {c for c in system._succ_cache}
            | {s for gs in system._succ_cache.values()
               for g in gs for _a, s in g}
            | set(system._options_cache)
        )


class TestSQLiteRetryBackoff:
    def test_delay_grows_exponentially_within_jitter_band(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "g.db")
        base = backend.RETRY_BASE_DELAY
        for attempt in range(6):
            raw = min(backend.RETRY_MAX_DELAY, base * (2 ** attempt))
            spread = raw * backend.RETRY_JITTER
            delay = backend._retry_delay(attempt)
            assert raw - spread <= delay <= raw + spread

    def test_delay_is_capped(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "g.db")
        cap = backend.RETRY_MAX_DELAY * (1 + backend.RETRY_JITTER)
        assert backend._retry_delay(50) <= cap

    def test_delays_decorrelate_writers(self, tmp_path):
        # The whole point of the jitter: two processes that collided on
        # the write lock must not sleep identically and re-collide.
        backend = SQLiteBackend(tmp_path / "g.db")
        samples = {backend._retry_delay(3) for _ in range(16)}
        assert len(samples) > 1
