"""Multi-writer hammer for the graph store's delta segments.

Mirrors the :mod:`tests.api.test_result_cache` hammer one layer down:
four processes flush delta segments for the *same* ``(program,
valuation)`` key concurrently — against both shipped backends — while
the parent reads.  Nothing the store does on a contended day may
publish a torn segment, lose a writer's entries, or crash:

* every segment on disk parses and passes its body checksum;
* merge-on-load equals the union of what every writer flushed;
* ``cache compact`` racing a live writer degrades gracefully (the
  writer's appends survive, the store stays loadable).
"""

import hashlib
import multiprocessing
import time

import pytest

from repro.counter.program import ProtocolProgram
from repro.counter.store import (
    GraphStore,
    active_graph_store,
    as_backend,
    compact_backend,
    deactivate_graph_store,
)
from repro.counter.system import CounterSystem
from repro.protocols import ks16

VALUATION = {"n": 4, "t": 1, "f": 1}
VERSION = "v-hammer"


@pytest.fixture(autouse=True)
def _no_leaked_store():
    previous = active_graph_store()
    deactivate_graph_store()
    yield
    deactivate_graph_store(previous)


@pytest.fixture(params=["dir", "sqlite"])
def backend_spec(request, tmp_path):
    if request.param == "dir":
        return str(tmp_path / "graphs")
    return f"sqlite:{tmp_path / 'graphs.db'}"


def _fresh_system():
    model = ks16.model()
    return CounterSystem(model, VALUATION, program=ProtocolProgram(model))


def _explore(system, limit, stride=1):
    """Expand a deterministic BFS prefix; ``stride`` varies the visit set.

    Different strides pop different frontier positions, so concurrent
    writers grow *different* (overlapping) subgraphs of one key — the
    shape that makes the union assertion meaningful.
    """
    frontier = list(system.initial_configs())
    seen = set(frontier)
    while frontier and len(seen) < limit:
        index = (len(seen) * stride) % len(frontier)
        config = frontier.pop(index)
        system.rule_options(config)
        for group in system.successor_groups(config):
            for _action, successor in group:
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
    return seen


def _flushed_keys(system):
    """The succ-cache key set as picklable flat data tuples."""
    return {config.data for config in system._succ_cache}


def _hammer(args):
    """Worker: grow one system in rounds, flushing a delta per round."""
    spec, worker, rounds = args
    store = GraphStore(spec, version=VERSION)
    system = _fresh_system()
    for round_no in range(1, rounds + 1):
        _explore(system, limit=60 * round_no, stride=worker + 1)
        store.flush(system)
    return {
        "keys": _flushed_keys(system),
        "errors": store.errors,
        "saves": store.saves,
    }


def _churn(args):
    """Worker for the compaction race: flush/grow in a timed loop."""
    spec, seconds = args
    store = GraphStore(spec, version=VERSION)
    system = _fresh_system()
    deadline = time.monotonic() + seconds
    limit = 30
    while time.monotonic() < deadline:
        _explore(system, limit=limit)
        store.flush(system)
        limit += 30
    return {"keys": _flushed_keys(system), "errors": store.errors}


class TestMultiWriterHammer:
    WORKERS = 4
    ROUNDS = 4

    def test_concurrent_delta_flushes_never_tear_and_merge_to_union(
        self, backend_spec
    ):
        with multiprocessing.Pool(self.WORKERS) as pool:
            async_result = pool.map_async(
                _hammer,
                [(backend_spec, worker, self.ROUNDS)
                 for worker in range(self.WORKERS)],
            )
            # Read concurrently with the writers: every load taken
            # while segments exist must succeed on complete data (a
            # torn segment would surface as a load error here).
            reader_hits = 0
            while not async_result.ready():
                reader = GraphStore(backend_spec, version=VERSION)
                system = _fresh_system()
                if reader.load_into(system):
                    reader_hits += 1
                    assert reader.errors == 0
                reader.close()
            reports = async_result.get()

        assert all(report["errors"] == 0 for report in reports)
        assert sum(report["saves"] for report in reports) >= self.WORKERS

        # No torn/corrupt segments: every blob parses and checksums.
        store = GraphStore(backend_spec, version=VERSION)
        key = store.key_for(_fresh_system())
        segments = store.backend.read_segments(key)
        assert segments
        for _token, raw in segments:
            header, body = GraphStore.parse_entry(raw)
            assert hashlib.sha256(body).hexdigest() == header["body_sha256"]

        # Merge-on-load equals the union of every writer's entries.
        union = set()
        for report in reports:
            union |= report["keys"]
        merged = _fresh_system()
        assert store.load_into(merged)
        assert _flushed_keys(merged) == union
        assert reader_hits >= 0  # reader ran without crashing

    def test_compact_under_live_writer_degrades_gracefully(
        self, backend_spec
    ):
        seconds = 1.5
        with multiprocessing.Pool(1) as pool:
            async_result = pool.map_async(_churn, [(backend_spec, seconds)])
            backend = as_backend(backend_spec)
            compactions = 0
            while not async_result.ready():
                stats = compact_backend(backend)
                compactions += 1
                # Graceful degradation: racing a writer may skip or
                # retry keys, but never corrupts or crashes.
                assert stats["corrupt_dropped"] == 0
                time.sleep(0.05)
            (report,) = async_result.get()

        assert compactions >= 1
        assert report["errors"] == 0
        # One final compaction with the writer gone fully squashes.
        final = compact_backend(backend)
        assert final["errors"] == 0
        store = GraphStore(backend_spec, version=VERSION)
        key = store.key_for(_fresh_system())
        assert store.backend.stats()[key][0] == 1
        # Everything the writer flushed survived the racing compactions.
        merged = _fresh_system()
        assert store.load_into(merged)
        assert report["keys"] <= _flushed_keys(merged)
