"""Unit tests for the explicit counter-system semantics."""

from fractions import Fraction

import pytest

from repro.counter.actions import Action
from repro.counter.system import CounterSystem, _compositions
from repro.errors import SemanticsError
from repro.protocols import mmr14, naive_voting

VAL = {"n": 4, "t": 1, "f": 1}


@pytest.fixture
def mmr_system():
    return CounterSystem(mmr14.model(), VAL)


@pytest.fixture
def voting_system():
    return CounterSystem(naive_voting.model(), {"n": 3, "f": 1})


class TestCompositions:
    def test_counts(self):
        assert len(list(_compositions(3, 2))) == 4
        assert len(list(_compositions(3, 3))) == 10

    def test_zero_parts(self):
        assert list(_compositions(0, 0)) == [()]
        assert list(_compositions(1, 0)) == []

    def test_sum_invariant(self):
        for split in _compositions(5, 3):
            assert sum(split) == 5


class TestSetup:
    def test_sizes(self, mmr_system):
        assert mmr_system.n_processes == 3
        assert mmr_system.n_coins == 1
        assert len(mmr_system.locations) == 25

    def test_start_locations(self, mmr_system):
        assert {l.name for l in mmr_system.process_start} == {"J0", "J1"}
        assert {l.name for l in mmr_system.coin_start} == {"J2"}

    def test_no_coin_protocol(self, voting_system):
        assert voting_system.n_coins == 0
        assert {l.name for l in voting_system.process_start} == {"I0", "I1"}

    def test_guard_compiled_against_params(self, mmr_system):
        rule = mmr_system.rules["r7"]  # b0 >= 2t+1-f = 2
        (lhs, _cmp, rhs) = rule.guard[0]
        assert rhs == 2

    def test_round_switch_detection(self, mmr_system):
        assert mmr_system.rules["rs1"].is_round_switch
        assert not mmr_system.rules["r3"].is_round_switch
        assert mmr_system.rules["re"].is_round_switch  # coin C0 -> J2


class TestBoundedInsert:
    """Pin the cache eviction policy: FIFO over insertion order.

    The docstring promises plain FIFO — *not* LRU: hits never refresh a
    key's position, and reaching the cap drops the oldest quarter by
    insertion order.  These tests are the contract; if eviction is ever
    made recency-aware, they must change together with the docstring.
    """

    def test_oldest_quarter_evicted_at_cap(self, monkeypatch):
        monkeypatch.setattr(CounterSystem, "SUCCESSOR_CACHE_CAP", 8)
        cache = {}
        for key in range(8):
            CounterSystem._bounded_insert(cache, key, f"v{key}")
        assert len(cache) == 8
        # The insert at the cap drops the oldest quarter (8 // 4 = 2).
        CounterSystem._bounded_insert(cache, 8, "v8")
        assert list(cache) == [2, 3, 4, 5, 6, 7, 8]

    def test_hits_do_not_refresh_recency(self, monkeypatch):
        monkeypatch.setattr(CounterSystem, "SUCCESSOR_CACHE_CAP", 8)
        cache = {}
        for key in range(8):
            CounterSystem._bounded_insert(cache, key, f"v{key}")
        # "Hit" the two oldest entries the way the engine does — plain
        # dict reads.  FIFO means they are still evicted first.
        assert cache[0] == "v0" and cache[1] == "v1"
        CounterSystem._bounded_insert(cache, 8, "v8")
        assert 0 not in cache and 1 not in cache
        assert list(cache) == [2, 3, 4, 5, 6, 7, 8]

    def test_reinsert_after_eviction_lands_at_the_tail(self, monkeypatch):
        monkeypatch.setattr(CounterSystem, "SUCCESSOR_CACHE_CAP", 8)
        cache = {}
        for key in range(9):  # evicts 0 and 1
            CounterSystem._bounded_insert(cache, key, f"v{key}")
        CounterSystem._bounded_insert(cache, 0, "v0-again")
        assert list(cache)[-1] == 0
        assert cache[0] == "v0-again"

    def test_below_cap_never_evicts(self, monkeypatch):
        monkeypatch.setattr(CounterSystem, "SUCCESSOR_CACHE_CAP", 8)
        cache = {}
        for key in range(7):
            CounterSystem._bounded_insert(cache, key, key)
        assert list(cache) == list(range(7))


class TestInitialConfigs:
    def test_count(self, mmr_system):
        # 3 processes over {J0, J1} = 4 splits, coin pinned at J2.
        assert len(list(mmr_system.initial_configs())) == 4

    def test_filter(self, mmr_system):
        configs = list(mmr_system.initial_configs({"J1": 0}))
        assert len(configs) == 1
        only = configs[0]
        assert mmr_system.counter_of(only, "J0") == 3
        assert mmr_system.counter_of(only, "J2") == 1

    def test_all_variables_zero(self, mmr_system):
        for config in mmr_system.initial_configs():
            assert all(v == 0 for v in config.g[0])


class TestSemantics:
    def test_apply_moves_and_updates(self, voting_system):
        config = voting_system.make_config({"I0": 2, "I1": 0})
        after = voting_system.apply(config, Action("r1", 0))
        assert voting_system.counter_of(after, "I0") == 1
        assert voting_system.counter_of(after, "S") == 1
        assert voting_system.value_of(after, "v0") == 1

    def test_guard_blocks(self, voting_system):
        config = voting_system.make_config({"S": 2})
        # 2*v0 >= n+1-2f = 2 needs v0 >= 1.
        assert not voting_system.is_applicable(config, Action("r3", 0))
        primed = voting_system.make_config({"S": 2}, {"v0": 1})
        assert voting_system.is_applicable(primed, Action("r3", 0))

    def test_apply_rejects_inapplicable(self, voting_system):
        config = voting_system.make_config({"I0": 1})
        with pytest.raises(SemanticsError):
            voting_system.apply(config, Action("r3", 0))

    def test_round_switch_moves_to_next_round(self, mmr_system):
        config = mmr_system.make_config({"E0": 1})
        after = mmr_system.apply(config, Action("rs1", 0))
        assert after.rounds == 2
        assert after.counter(1, mmr_system.loc_index["J0"]) == 1
        assert after.counter(0, mmr_system.loc_index["E0"]) == 0

    def test_actions_in_later_rounds_enabled(self, mmr_system):
        config = mmr_system.make_config({"E0": 1})
        after = mmr_system.apply(config, Action("rs1", 0))
        actions = mmr_system.enabled_actions(after)
        assert Action("r1", 1) in actions

    def test_coin_branch_actions_expanded(self, mmr_system):
        config = mmr_system.make_config({"I2": 1})
        actions = mmr_system.enabled_actions(config)
        assert Action("rb", 0, "T0") in actions
        assert Action("rb", 0, "T1") in actions

    def test_branch_apply_requires_branch(self, mmr_system):
        config = mmr_system.make_config({"I2": 1})
        with pytest.raises(SemanticsError):
            mmr_system.apply(config, Action("rb", 0))

    def test_invalid_branch_rejected(self, mmr_system):
        config = mmr_system.make_config({"I2": 1})
        with pytest.raises(SemanticsError):
            mmr_system.apply(config, Action("rb", 0, "C0"))

    def test_prob_transitions(self, mmr_system):
        config = mmr_system.make_config({"I2": 1})
        moves = mmr_system.prob_transitions(config, "rb", 0)
        assert len(moves) == 2
        assert all(p == Fraction(1, 2) for p, _ in moves)
        targets = {
            mmr_system.counter_of(c, "T0") + 2 * mmr_system.counter_of(c, "T1")
            for _, c in moves
        }
        assert targets == {1, 2}

    def test_prob_transitions_rejects_blocked(self, mmr_system):
        config = mmr_system.make_config({"J2": 1})
        with pytest.raises(SemanticsError):
            mmr_system.prob_transitions(config, "rb", 0)

    def test_per_round_variables_are_separate(self, mmr_system):
        config = mmr_system.make_config({"E0": 1, "I0": 1}, {"b0": 5})
        after = mmr_system.apply(config, Action("rs1", 0))   # E0 -> J0 (round 1)
        after = mmr_system.apply(after, Action("r1", 1))     # J0 -> I0 (round 1)
        after = mmr_system.apply(after, Action("r3", 1))     # broadcast in round 1
        assert after.variable(0, mmr_system.var_index["b0"]) == 5
        assert after.variable(1, mmr_system.var_index["b0"]) == 1
