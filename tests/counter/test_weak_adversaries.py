"""Beyond round-rigid adversaries (the paper's §VIII future work).

The paper proves termination only for *round-rigid* adversaries and
leaves weak (round-unconstrained) adversaries to future work.  These
tests probe that frontier empirically on the counter-system MDP: under
unconstrained random scheduling (processes freely mixed across rounds),
sampled runs of MMR14 still decide — consistent with the conjecture
that the round-rigid restriction is an artifact of the proof, not of
the protocol.
"""

import random

import pytest

from repro.counter.adversary import RandomAdversary, RoundRigidAdversary
from repro.counter.mdp import sample_path
from repro.counter.system import CounterSystem
from repro.protocols import mmr14

VAL = {"n": 4, "t": 1, "f": 1}


@pytest.fixture(scope="module")
def system():
    return CounterSystem(mmr14.model(), VAL)


def decided_all(system, config) -> bool:
    d0 = system.loc_index["D0"]
    d1 = system.loc_index["D1"]
    total = sum(
        config.counter(k, loc)
        for k in range(config.rounds)
        for loc in (d0, d1)
    )
    return total == system.n_processes


def test_weak_adversary_runs_cross_rounds(system):
    """Unwrapped random adversaries genuinely interleave rounds."""
    config = next(iter(system.initial_configs({"J1": 1})))
    run = sample_path(
        system, config, RandomAdversary(seed=5), random.Random(5),
        max_steps=400,
    )
    rounds = {action.round for action in run.actions}
    assert len(rounds) >= 2  # not round-rigid


def test_weak_adversary_terminates_on_samples(system):
    """Sampled weak-adversary runs still decide (future-work frontier)."""
    config = next(iter(system.initial_configs({"J1": 1})))
    decided = 0
    for seed in range(6):
        run = sample_path(
            system,
            config,
            RandomAdversary(seed=seed),
            random.Random(seed),
            max_steps=2500,
            stop=lambda c: decided_all(system, c),
        )
        if decided_all(system, run.last):
            decided += 1
    assert decided >= 4


def test_round_rigid_wrapper_restricts(system):
    """The wrapped adversary produces round-rigid schedules."""
    config = next(iter(system.initial_configs({"J1": 1})))
    run = sample_path(
        system,
        config,
        RoundRigidAdversary(RandomAdversary(seed=2)),
        random.Random(2),
        max_steps=300,
    )
    schedule = run.schedule()
    # Round-rigid modulo the pipelining of round switches: once a
    # lower round has no enabled actions the adversary never returns.
    rounds = [action.round for action in schedule]
    seen_max = 0
    violations = 0
    for r in rounds:
        if r < seen_max - 1:
            violations += 1
        seen_max = max(seen_max, r)
    assert violations == 0
