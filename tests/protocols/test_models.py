"""Structural tests for all benchmark protocol models."""

import pytest

from repro.checker.milestones import CombinedModel, extract_milestones
from repro.core.locations import LocKind
from repro.protocols import aby22, benchmark, by_name, mmr14
from repro.protocols.registry import BENCHMARK


class TestRegistry:
    def test_eight_protocols_in_table_ii_order(self):
        names = [entry.name for entry in benchmark()]
        assert names == [
            "rabin83", "cc85a", "cc85b", "fmr05",
            "ks16", "mmr14", "miller18", "aby22",
        ]

    def test_by_name(self):
        assert by_name("mmr14").category == "C"
        with pytest.raises(KeyError):
            by_name("paxos")

    def test_category_split(self):
        categories = {entry.name: entry.category for entry in BENCHMARK}
        assert categories["rabin83"] == "A"
        assert all(
            categories[name] == "B" for name in ("cc85a", "cc85b", "fmr05", "ks16")
        )
        assert all(
            categories[name] == "C" for name in ("mmr14", "miller18", "aby22")
        )

    def test_only_mmr14_has_paper_counterexample(self):
        flagged = [e.name for e in BENCHMARK if e.paper_termination_ce]
        assert flagged == ["mmr14"]


@pytest.mark.parametrize("entry", BENCHMARK, ids=lambda e: e.name)
class TestEveryModel:
    def test_multi_round_form_valid(self, entry):
        entry.model().validate_multi_round()

    def test_small_valuation_admissible(self, entry):
        model = entry.model()
        assert model.environment.admits(entry.small_valuation)

    def test_single_round_transform_valid(self, entry):
        rd = entry.model().single_round()
        rd.process.check_single_round_form()

    def test_size_tracks_paper(self, entry):
        locs, rules = entry.model().paper_size()
        paper_locs, paper_rules = entry.paper_size
        # Remodelled automata stay within a modest margin of Table II
        # (the refined forms close most of the remaining gap).
        assert abs(locs - paper_locs) <= 6
        assert abs(rules - paper_rules) <= 16

    def test_category_c_has_refined_model(self, entry):
        if entry.category == "C":
            refined = entry.refined()
            for role in ("M0", "M1", "Mbot", "N0", "N1", "Nbot"):
                assert role in refined.crusader_locations
        else:
            assert entry.refined is None

    def test_coin_automaton_is_strong(self, entry):
        coin = entry.model().coin
        (toss,) = coin.non_dirac_rules()
        assert all(p == pytest.approx(0.5) for _t, p in toss.branches)

    def test_decision_locations_match_category(self, entry):
        process = entry.model().process
        decisions = process.decision_locations()
        if entry.category == "A":
            assert not decisions  # category A: no decide action
        else:
            assert {loc.name for loc in decisions} == {"D0", "D1"}


class TestMMR14Details:
    def test_rule_table_i_guards(self):
        """Spot-check Table I: thresholds of the named rules."""
        ta = mmr14.automaton()
        val = {"n": 4, "t": 1, "f": 1}
        # r7: b0 >= 2t+1-f = 2
        (guard,) = ta.rule("r7").guard
        assert guard.rhs.evaluate(val) == 2
        # r5 (relay): b1 >= t+1-f = 1
        (guard,) = ta.rule("r5").guard
        assert guard.rhs.evaluate(val) == 1
        # r15: a0 >= n-t-f = 2
        (guard,) = ta.rule("r15").guard
        assert guard.rhs.evaluate(val) == 2
        # r21: a0 + a1 >= n-t-f
        (guard,) = ta.rule("r21").guard
        assert guard.lhs == (("a0", 1), ("a1", 1))

    def test_updates_match_table_i(self):
        ta = mmr14.automaton()
        assert ta.rule("r3").update == (("b0", 1),)
        assert ta.rule("r5").update == (("b1", 1),)
        assert ta.rule("r7").update == (("a0", 1),)
        assert ta.rule("r13").update == ()

    def test_milestone_count(self):
        combined = CombinedModel(mmr14.model().single_round())
        assert len(extract_milestones(combined)) == 9

    def test_refined_milestone_count(self):
        combined = CombinedModel(mmr14.refined_model().single_round())
        assert len(extract_milestones(combined)) == 11


class TestABY22Variants:
    def test_variant_milestones_decrease_by_one(self):
        counts = []
        for level in range(5):
            combined = CombinedModel(aby22.variant(level).single_round())
            counts.append(len(extract_milestones(combined)))
        assert counts == sorted(counts, reverse=True)
        assert all(a - b == 1 for a, b in zip(counts, counts[1:]))

    def test_variant_sizes_identical(self):
        sizes = {aby22.variant(level).paper_size() for level in range(5)}
        assert len(sizes) == 1

    def test_invalid_merge_level_rejected(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            aby22.automaton(5)
