"""Unit tests for the service's bookkeeping layer.

Covers the task wire format (:meth:`VerificationTask.to_dict` /
``from_dict`` and the ``dedup_key`` identity), the
:class:`TaskRegistry` dedup state machine, the
:class:`ServiceJournal`'s durability contract, and the state-file
breadcrumb — all without starting a daemon.
"""

import json

import pytest

from repro.api.task import Limits, VerificationTask
from repro.errors import CheckError
from repro.service.registry import (
    SERVICE_STATE_NAME,
    ServiceJournal,
    TaskRegistry,
    read_state_file,
    remove_state_file,
    write_state_file,
)
from repro.spec.queries import ReachQuery


def make_payload(task_id="t", error=""):
    return {"task_id": task_id, "protocol": "cc85a", "engine": "explicit",
            "valuation": {}, "verdict": "error" if error else "holds",
            "obligations": [], "time_seconds": 0.0, "cached": False,
            "error": error}


class TestTaskWireFormat:
    def test_roundtrip_preserves_identity(self):
        task = VerificationTask(
            protocol="mmr14",
            valuation={"n": 4, "t": 1, "f": 1},
            targets=("agreement", "validity"),
            engine="explicit",
            limits=Limits(max_states=1000, max_seconds=5.0),
        )
        restored = VerificationTask.from_dict(
            json.loads(json.dumps(task.to_dict()))
        )
        assert restored == task
        assert restored.dedup_key == task.dedup_key
        assert restored.journal_key == task.journal_key

    def test_default_valuation_survives_as_default(self):
        # "use the registry's smallest valuation" must not be frozen
        # into a concrete dict by the wire trip.
        task = VerificationTask(protocol="rabin83")
        restored = VerificationTask.from_dict(task.to_dict())
        assert restored.valuation is None
        assert "valuation" not in task.to_dict()

    def test_custom_model_refuses_the_wire(self):
        from repro.protocols.registry import by_name

        task = VerificationTask(model=by_name("cc85a").model())
        with pytest.raises(CheckError, match="registry tasks"):
            task.to_dict()

    def test_ad_hoc_queries_refuse_the_wire(self):
        task = VerificationTask(
            protocol="cc85a",
            queries=(ReachQuery(name="q", formula="EF bad", events=()),),
        )
        with pytest.raises(CheckError, match="registry tasks"):
            task.to_dict()

    def test_dedup_key_tracks_task_identity(self):
        base = VerificationTask(protocol="cc85a", targets=("agreement",))
        same = VerificationTask(protocol="cc85a", targets=("agreement",))
        assert base.dedup_key == same.dedup_key
        assert len(base.dedup_key) == 32
        othertarget = VerificationTask(protocol="cc85a",
                                       targets=("validity",))
        otherlimits = VerificationTask(protocol="cc85a",
                                       targets=("agreement",),
                                       limits=Limits(max_states=7))
        assert base.dedup_key != othertarget.dedup_key
        # Same task id under a different budget is a different answer.
        assert base.dedup_key != otherlimits.dedup_key


class TestTaskRegistry:
    def test_claim_then_complete_notifies_all_waiters(self):
        registry = TaskRegistry()
        seen = []
        task = object()
        assert registry.claim("k", task, lambda k, p: seen.append(("a", p)))\
            == ("claimed", None)
        assert registry.claim("k", task, lambda k, p: seen.append(("b", p)))\
            == ("joined", None)
        payload = make_payload()
        registry.complete("k", payload, retain=True)
        assert seen == [("a", payload), ("b", payload)]
        assert registry.resolve("k") == payload
        # A later claim is served done without registering anything.
        assert registry.claim("k", task, lambda k, p: None) \
            == ("done", payload)

    def test_error_completion_notifies_but_is_not_retained(self):
        registry = TaskRegistry()
        seen = []
        registry.claim("k", object(), lambda k, p: seen.append(p))
        payload = make_payload(error="CheckError: boom")
        registry.complete("k", payload, retain=False)
        assert seen == [payload]
        assert registry.resolve("k") is None
        # The next submission computes again instead of replaying.
        assert registry.claim("k", object(), lambda k, p: None)[0] \
            == "claimed"

    def test_adopt_never_displaces(self):
        registry = TaskRegistry()
        registry.adopt("k", make_payload("first"))
        registry.adopt("k", make_payload("second"))
        assert registry.resolve("k")["task_id"] == "first"
        registry.claim("live", object(), lambda k, p: None)
        registry.adopt("live", make_payload())
        assert registry.resolve("live") is None  # in-flight wins

    def test_fail_pending_wakes_every_waiter_with_none(self):
        registry = TaskRegistry()
        seen = []
        registry.claim("k1", object(), lambda k, p: seen.append((k, p)))
        registry.claim("k1", object(), lambda k, p: seen.append((k, p)))
        registry.claim("k2", object(), lambda k, p: seen.append((k, p)))
        assert registry.fail_pending() == 2
        assert sorted(seen) == [("k1", None), ("k1", None), ("k2", None)]
        assert registry.stats() == {"retained": 0, "in_flight": 0}

    def test_stats_counts_both_sides(self):
        registry = TaskRegistry()
        registry.preload({"a": make_payload(), "b": make_payload()})
        registry.claim("c", object(), lambda k, p: None)
        assert registry.stats() == {"retained": 2, "in_flight": 1}


class TestServiceJournal:
    def test_append_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "service-journal.jsonl"
        journal = ServiceJournal(path, "v1")
        assert journal.load() == {}
        journal.append("k1", "task-1", make_payload("one"))
        journal.append("k2", "task-2", make_payload("two"))
        journal.close()
        loaded = ServiceJournal(path, "v1").load()
        assert set(loaded) == {"k1", "k2"}
        assert loaded["k1"]["task_id"] == "one"

    def test_error_records_are_appended_but_not_loaded(self, tmp_path):
        path = tmp_path / "service-journal.jsonl"
        journal = ServiceJournal(path, "v1")
        journal.load()
        journal.append("k", "task", make_payload(error="OSError: disk"))
        journal.close()
        assert "OSError" in path.read_text()  # the diagnostic trail
        assert ServiceJournal(path, "v1").load() == {}

    def test_version_mismatch_discards_wholesale(self, tmp_path):
        path = tmp_path / "service-journal.jsonl"
        journal = ServiceJournal(path, "v1")
        journal.load()
        journal.append("k", "task", make_payload())
        journal.close()
        assert ServiceJournal(path, "v2").load() == {}
        # ... and the file was truncated to a fresh v2 header.
        assert ServiceJournal(path, "v2").load() == {}
        assert "v2" in path.read_text().splitlines()[0]

    def test_torn_tail_and_garbage_are_tolerated(self, tmp_path):
        path = tmp_path / "service-journal.jsonl"
        journal = ServiceJournal(path, "v1")
        journal.load()
        journal.append("k1", "task", make_payload("good"))
        journal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"key": "k2", "task": "t", "result": {"tr')
        loaded = ServiceJournal(path, "v1").load()
        assert set(loaded) == {"k1"}

    def test_duplicate_keys_resolve_last_wins(self, tmp_path):
        path = tmp_path / "service-journal.jsonl"
        journal = ServiceJournal(path, "v1")
        journal.load()
        journal.append("k", "task", make_payload("old"))
        journal.append("k", "task", make_payload("new"))
        journal.close()
        assert ServiceJournal(path, "v1").load()["k"]["task_id"] == "new"


class TestStateFile:
    def test_write_read_remove_roundtrip(self, tmp_path):
        info = {"pid": 4242, "host": "127.0.0.1", "port": 8123}
        write_state_file(tmp_path, info)
        assert read_state_file(tmp_path) == info
        remove_state_file(tmp_path)
        assert read_state_file(tmp_path) is None
        remove_state_file(tmp_path)  # idempotent

    def test_unreadable_state_file_answers_none(self, tmp_path):
        (tmp_path / SERVICE_STATE_NAME).write_text("not json")
        assert read_state_file(tmp_path) is None
        (tmp_path / SERVICE_STATE_NAME).write_text("[1, 2]")
        assert read_state_file(tmp_path) is None
