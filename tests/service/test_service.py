"""Integration tests: the verification daemon end to end.

Each test boots a real :class:`VerificationService` — warm
:class:`SupervisedPool`, dispatcher thread, HTTP listener on an
ephemeral port — and talks to it through the stdlib
:class:`ServiceClient`, exactly as the ``--server`` CLI does.  The
invariants under test are the service's reason to exist: answers
bit-identical to local runs, identical in-flight tasks computed once,
warm restarts that serve yesterday's work from the journal, and a
daemon that keeps answering while its workers are being killed.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.service import ServiceClient, ServiceError, VerificationService
from repro.service.registry import read_state_file
from repro.testing import FaultPlan
from tests.api.test_sweep import ALL_PROTOCOLS, GOLDEN, stable

#: Sub-second validity bundles — the daemon tests' bread and butter.
FAST = ("cc85a", "ks16")


def make_tasks(protocols=FAST, targets=("validity",)):
    return [api.VerificationTask(protocol=name, targets=targets)
            for name in protocols]


def settle(*results):
    """The timing-free projection of results, via the sweep helper."""
    return stable(api.RunReport(results=tuple(results), processes=1))


@pytest.fixture
def service(tmp_path):
    svc = VerificationService(processes=2,
                              state_dir=str(tmp_path / "state"))
    svc.start()
    try:
        yield svc
    finally:
        svc.stop()


@pytest.fixture
def client(service):
    return ServiceClient(service.url)


class TestVerify:
    def test_single_task_matches_the_local_engine(self, client):
        task = api.VerificationTask(protocol="cc85a",
                                    targets=("validity",))
        remote = client.verify(task)
        local = api.verify("cc85a", targets=("validity",))
        assert remote.cached is False
        assert settle(remote) == settle(local)

    def test_second_verify_is_served_warm(self, client):
        task = api.VerificationTask(protocol="ks16",
                                    targets=("validity",))
        cold = client.verify(task)
        warm = client.verify(task)
        assert cold.cached is False and warm.cached is True
        assert settle(cold) == settle(warm)


class TestSweep:
    def test_report_matches_the_local_sweep(self, client):
        report = client.submit(make_tasks())
        local = api.sweep(protocols=FAST, targets=("validity",),
                          processes=1)
        assert stable(report) == stable(local)
        assert report.request_id  # daemon stamped the stream

    def test_duplicate_tasks_in_one_request_compute_once(self, service,
                                                         client):
        tasks = make_tasks(("cc85a", "ks16", "cc85a"))
        report = client.submit(tasks)
        assert len(report.results) == 3
        assert report.deduped == 1
        deduped = [r for r in report.results if r.deduped]
        assert len(deduped) == 1
        assert settle(report.results[0]) == settle(deduped[0])
        assert service.status()["tasks_computed"] == 2

    def test_warm_second_pass_never_recomputes(self, service, client):
        cold = client.submit(make_tasks())
        warm = client.submit(make_tasks())
        assert stable(cold) == stable(warm)
        assert warm.cache_hits == len(warm.results)
        assert all(r.cached for r in warm.results)
        assert service.status()["tasks_computed"] == len(cold.results)


class TestConcurrentClients:
    def test_identical_inflight_task_is_joined_not_recomputed(
        self, service, client
    ):
        # rabin83/agreement runs for seconds — long enough for a second
        # client to arrive while the first's task is still in flight.
        task = api.VerificationTask(protocol="rabin83",
                                    targets=("agreement",))
        first = {}

        def submit_first():
            first["report"] = client.submit([task])

        thread = threading.Thread(target=submit_first)
        thread.start()
        try:
            deadline = time.monotonic() + 30.0
            while service.status()["in_flight"] < 1:
                assert time.monotonic() < deadline, "task never in flight"
                time.sleep(0.01)
            second = ServiceClient(service.url).submit([task])
        finally:
            thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert second.deduped == 1
        assert second.results[0].deduped is True
        assert settle(first["report"].results[0]) \
            == settle(second.results[0])
        assert service.status()["tasks_computed"] == 1
        assert service.status()["dedup_hits"] == 1


class TestChaosUnderDaemon:
    def test_worker_kill_is_invisible_to_clients(self, tmp_path):
        plan = FaultPlan(scratch=str(tmp_path / "faults"))\
            .kill_task("ks16", nth=1)
        svc = VerificationService(
            processes=2, state_dir=str(tmp_path / "state"),
            task_timeout=15.0, fault_plan=plan,
        )
        svc.start()
        try:
            client = ServiceClient(svc.url)
            report = client.submit(make_tasks())
            local = api.sweep(protocols=FAST, targets=("validity",),
                              processes=1)
            assert stable(report) == stable(local)
            (victim,) = [r for r in report.results
                         if r.protocol == "ks16"]
            assert victim.attempts == 2
            assert svc.status()["worker_restarts"] >= 1
            # The respawned fleet keeps answering fresh work.
            again = client.submit(make_tasks(("fmr05",)))
            assert again.results[0].verdict == "holds"
            assert not again.results[0].cached
        finally:
            svc.stop()


class TestRestartResume:
    def test_restarted_daemon_serves_yesterdays_work_warm(self, tmp_path):
        state_dir = str(tmp_path / "state")
        first = VerificationService(processes=2, state_dir=state_dir)
        first.start()
        try:
            cold = ServiceClient(first.url).submit(make_tasks())
            assert read_state_file(tmp_path / "state")["pid"]
        finally:
            first.stop()
        assert read_state_file(tmp_path / "state") is None
        second = VerificationService(processes=2, state_dir=state_dir)
        second.start()
        try:
            status = second.status()
            assert status["journal_preloaded"] == len(cold.results)
            warm = ServiceClient(second.url).submit(make_tasks())
            assert stable(warm) == stable(cold)
            assert all(r.cached for r in warm.results)
            assert second.status()["tasks_computed"] == 0
        finally:
            second.stop()


class TestHttpSurface:
    def test_status_and_healthz_answer(self, service):
        with urllib.request.urlopen(service.url + "/v1/status") as resp:
            status = json.loads(resp.read())
        assert status["pid"] and status["port"] == service.port
        with urllib.request.urlopen(service.url + "/healthz") as resp:
            assert resp.status == 200

    def test_unknown_path_is_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(service.url + "/v1/nope")
        assert excinfo.value.code == 404

    def test_malformed_sweep_payload_is_400(self, service):
        for body in (b"not json", b'{"no": "tasks"}', b'{"tasks": []}',
                     b'{"tasks": "nope"}'):
            request = urllib.request.Request(
                service.url + "/v1/sweep", data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request)
            assert excinfo.value.code == 400

    def test_client_wraps_connection_failures(self):
        lonely = ServiceClient("http://127.0.0.1:9")  # discard port
        with pytest.raises(ServiceError, match="service"):
            lonely.status(timeout=0.5)

    def test_bind_failure_reaps_the_warm_fleet(self, service):
        # The fleet forks before the port binds; a bind failure must
        # reap it, not orphan two warm workers behind a dead daemon.
        rival = VerificationService(port=service.port, processes=2)
        with pytest.raises(OSError):
            rival.start()
        assert not rival._pool.persistent  # close() ran, fleet reaped

    def test_client_rejects_non_http_urls(self):
        with pytest.raises(ServiceError):
            ServiceClient("ftp://example.org:21")


@pytest.mark.slow_equivalence
class TestGoldenService:
    """Acceptance: the full 8-protocol sweep over HTTP reproduces
    ``seed_verdicts.json`` bit-for-bit, cold and warm."""

    def test_full_sweep_over_http_reproduces_seed_verdicts(self, tmp_path):
        svc = VerificationService(processes=4,
                                  state_dir=str(tmp_path / "state"))
        svc.start()
        try:
            client = ServiceClient(svc.url)
            tasks = [api.VerificationTask(protocol=name)
                     for name in ALL_PROTOCOLS]
            cold = client.submit(tasks)
            assert len(cold.results) == len(ALL_PROTOCOLS)
            for result in cold.results:
                assert not result.error
                for outcome in result.obligations:
                    got = {
                        "queries": [[q.query, q.verdict,
                                     q.states_explored]
                                    for q in outcome.queries],
                        "sides": dict(outcome.side_conditions),
                    }
                    assert got == GOLDEN[result.protocol][outcome.target]
            warm = client.submit(tasks)
            assert stable(warm) == stable(cold)
            assert warm.cache_hits == len(tasks)
            assert svc.status()["tasks_computed"] == len(tasks)
        finally:
            svc.stop()


class TestCoinModels:
    """The coin axis over the wire, and the daemon's default coin."""

    LIMITS = api.Limits(max_states=20_000)

    def test_coined_task_round_trips_and_flips_verdict(self, client):
        plain, split = client.submit([
            api.VerificationTask(protocol="cc85a", targets=("agreement",),
                                 limits=self.LIMITS),
            api.VerificationTask(protocol="cc85a", targets=("agreement",),
                                 limits=self.LIMITS, coin="disagreeing:1/8"),
        ]).results
        assert plain.verdict == "holds"
        assert split.verdict == "violated"
        assert "coin=disagreeing:1/8" in split.task_id

    def test_default_coin_fills_coinless_tasks_only(self, tmp_path):
        svc = VerificationService(processes=1,
                                  state_dir=str(tmp_path / "state"),
                                  default_coin="biased:1/4")
        svc.start()
        try:
            report = ServiceClient(svc.url).submit([
                api.VerificationTask(protocol="cc85a",
                                     targets=("agreement",),
                                     limits=self.LIMITS),
                api.VerificationTask(protocol="cc85a",
                                     targets=("agreement",),
                                     limits=self.LIMITS,
                                     coin="failing:1/8"),
            ])
            defaulted, explicit = report.results
            assert "coin=biased:1/4" in defaulted.task_id
            assert "coin=failing:1/8" in explicit.task_id
            status = json.loads(
                urllib.request.urlopen(f"{svc.url}/v1/status").read()
            )
            assert status["default_coin"] == "biased:1/4"
        finally:
            svc.stop()

    def test_perfect_default_coin_rewrites_nothing(self, tmp_path):
        svc = VerificationService(processes=1, default_coin="perfect")
        assert svc.default_coin is None
