"""Simulator-vs-checker statistical agreement, registry wide.

The repo models every benchmark protocol twice, at different
granularities: the counter-system MDP (§III-E semantics, sampled by
:func:`repro.counter.mdp.sample_path` under a random adversary) and the
message-level simulator (:mod:`repro.sim.fleet` under a random
scheduler).  ``TestRegistryWideCrossValidation`` runs the standing
:func:`repro.sim.crossval.check_cell` gate over all 8 protocols × the
perfect / biased / failing coin columns; the MMR14-specific classes
below are the original PR-5 derivation of the statistics (silent
Byzantine, plain geometric fit) kept as an independently-wired pin.

The MMR14 story the original classes check at ``n=4, t=1, f=1``:

* **termination probability** — under *random* (non-adaptive)
  scheduling MMR14 terminates almost surely (the §II attack needs an
  adaptive adversary); the sampled termination frequency of both
  layers must sit at the top of the scale and agree within a small
  tolerance, and a 2×2 chi-square homogeneity statistic over
  decided/undecided counts must stay under the α=0.01 critical value;
* **memorylessness** — in both layers the all-decided round is driven
  by the common coin matching the unanimous value, so each layer's
  decision-round distribution must pass a chi-square goodness-of-fit
  against a geometric law with its *own* estimated rate.  The rates
  themselves legitimately differ (one simulator "round" is many MDP
  scheduling steps, and the random adversary wanders through coin
  round-switches), which is exactly why the cross-layer invariant is
  the shape, not the rate.  The simulator's per-round decision rate,
  however, is the folklore coin-match probability and must straddle
  1/2.

Everything is seeded, so the sampled statistics are deterministic —
the tolerances guard modelling drift, not sampling noise.  Sampling a
few hundred 6000-step paths is slow, hence the ``slow_equivalence``
gate (CI runs it with ``--run-slow-equivalence``).
"""

import collections
import random

import pytest

from repro.counter.adversary import RandomAdversary
from repro.counter.mdp import sample_path
from repro.counter.system import CounterSystem
from repro.protocols import mmr14
from repro.protocols.registry import names
from repro.sim import MMR14Process
from repro.sim.adversary import RandomScheduler
from repro.sim.crossval import check_cell
from repro.sim.runner import Simulation, run

pytestmark = pytest.mark.slow_equivalence

#: fleet/MDP sample size per registry cell (calibrated: every cell of
#: the 8 × 3 matrix passes deterministically at this size).
REGISTRY_RUNS = 120


@pytest.mark.parametrize(
    "coin",
    [None, "biased:1/4", "failing:1/8"],
    ids=["perfect", "biased", "failing"],
)
@pytest.mark.parametrize("protocol", names())
class TestRegistryWideCrossValidation:
    """The standing gate: every (protocol, coin) cell cross-validates.

    One :func:`check_cell` call samples both layers and applies the
    full battery — termination floors and homogeneity (or, for the
    failing coin, the parked-on-Tbot invariant), the mode-shifted
    geometric tail fit per layer (split per decided value under bias)
    and the simulator's lottery rate pin.  Everything is seeded: a
    failure is modelling drift, not sampling noise.
    """

    def test_cell_cross_validates(self, protocol, coin):
        verdict = check_cell(protocol, coin, runs=REGISTRY_RUNS)
        assert verdict.passed, (
            f"{protocol} / {verdict.coin}:\n  "
            + "\n  ".join(verdict.failures)
        )

VALUATION = {"n": 4, "t": 1, "f": 1}
RUNS = 150
#: Step budget per sampled MDP path; at this depth the sampled
#: termination frequency has converged (0.93 at 1500, 1.00 at 6000).
MAX_STEPS = 6000

#: χ² critical values at α = 0.01 by degrees of freedom.
CHI2_CRIT = {1: 6.63, 3: 11.34, 7: 18.48}


def _mdp_decision_rounds():
    """Sampled all-decided rounds of the counter-system MDP."""
    system = CounterSystem(mmr14.model(), VALUATION)
    d0, d1 = system.loc_index["D0"], system.loc_index["D1"]
    block, processes = system.block, system.n_processes
    # Mixed inputs (one 0, two 1) and the coin at its round-entry
    # location — the same split the simulator runs below.
    config = system.make_config({"J0": 1, "J1": 2, "J2": 1})

    def decided_round(candidate):
        data = candidate.data
        for round_no in range(candidate.rounds):
            base = round_no * block
            if data[base + d0] + data[base + d1] == processes:
                return round_no
        return None

    rounds = []
    undecided = 0
    for seed in range(RUNS):
        path = sample_path(
            system, config, RandomAdversary(seed=seed),
            random.Random(seed), max_steps=MAX_STEPS,
            stop=lambda c: decided_round(c) is not None,
        )
        round_no = decided_round(path.last)
        if round_no is None:
            undecided += 1
        else:
            rounds.append(round_no)
    return rounds, undecided


def _sim_decision_rounds():
    """Empirical all-decided rounds of the message-level simulator."""
    rounds = []
    undecided = 0
    for seed in range(RUNS):
        simulation = Simulation(MMR14Process, 4, 1, [0, 1, 1],
                                coin_seed=seed)
        result = run(simulation, RandomScheduler(seed=seed),
                     max_steps=20_000)
        if result.all_decided:
            rounds.append(max(result.decision_rounds.values()))
        else:
            undecided += 1
    return rounds, undecided


def _chi2_geometric(rounds, bins):
    """χ² statistic of ``rounds`` against Geometric(p̂), plus p̂.

    Bins 0..bins-1 individually, everything beyond as one tail bin;
    p̂ is the moment estimate 1 / (1 + mean), losing one further
    degree of freedom (df = bins - 1).
    """
    n = len(rounds)
    p_hat = 1.0 / (1.0 + sum(rounds) / n)
    counts = collections.Counter(rounds)
    statistic = 0.0
    for k in range(bins):
        expected = n * p_hat * (1.0 - p_hat) ** k
        statistic += (counts.get(k, 0) - expected) ** 2 / expected
    tail_expected = n * (1.0 - p_hat) ** bins
    tail_observed = sum(v for k, v in counts.items() if k >= bins)
    statistic += (tail_observed - tail_expected) ** 2 / max(
        tail_expected, 1e-9
    )
    return statistic, p_hat


@pytest.fixture(scope="module")
def samples():
    return {"mdp": _mdp_decision_rounds(), "sim": _sim_decision_rounds()}


class TestTerminationProbabilityAgreement:
    def test_both_layers_terminate_with_agreeing_frequency(self, samples):
        frequencies = {}
        for layer, (rounds, undecided) in samples.items():
            frequency = len(rounds) / RUNS
            assert frequency >= 0.95, (
                f"{layer}: termination frequency {frequency:.3f} "
                f"({undecided} undecided of {RUNS})"
            )
            frequencies[layer] = frequency
        assert abs(frequencies["mdp"] - frequencies["sim"]) <= 0.05

    def test_two_by_two_chi_square_homogeneity(self, samples):
        decided = {layer: len(rounds) for layer, (rounds, _u) in
                   samples.items()}
        undecided = {layer: RUNS - count for layer, count in decided.items()}
        total_decided = sum(decided.values())
        total_undecided = sum(undecided.values())
        if total_undecided == 0:
            return  # identical columns: χ² = 0 by definition
        statistic = 0.0
        for layer in samples:
            for observed, total in (
                (decided[layer], total_decided),
                (undecided[layer], total_undecided),
            ):
                expected = total * RUNS / (2 * RUNS)
                statistic += (observed - expected) ** 2 / max(expected, 1e-9)
        assert statistic < CHI2_CRIT[1], (
            f"termination counts diverge across layers: χ²={statistic:.2f}"
        )


class TestGeometricDecisionRounds:
    def test_mdp_decision_round_is_geometric(self, samples):
        rounds, _undecided = samples["mdp"]
        statistic, _p_hat = _chi2_geometric(rounds, bins=8)
        assert statistic < CHI2_CRIT[7], (
            f"MDP decision rounds reject the geometric fit: "
            f"χ²={statistic:.2f} (crit {CHI2_CRIT[7]})"
        )

    def test_sim_decision_round_is_geometric_at_the_coin_rate(self, samples):
        rounds, _undecided = samples["sim"]
        statistic, p_hat = _chi2_geometric(rounds, bins=4)
        assert statistic < CHI2_CRIT[3], (
            f"sim decision rounds reject the geometric fit: "
            f"χ²={statistic:.2f} (crit {CHI2_CRIT[3]})"
        )
        # Folklore: one decision chance per round, won when the common
        # coin matches the unanimous value — probability 1/2.
        assert 0.35 <= p_hat <= 0.65, (
            f"sim per-round decision rate {p_hat:.3f} far from the "
            f"coin-match probability 1/2"
        )
