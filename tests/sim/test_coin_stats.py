"""Statistical pins for the ε-Good oracle and its CoinSpec models.

Two contracts:

* **The ε semantics fix.**  ``CommonCoin``'s docstring has always
  promised an ε-Good coin — *each* value with probability at least ε —
  but ``get()`` historically sampled ``P(1) = ε`` outright, giving
  value 1 *less* than the promised lower bound for every ε < 1/2 (and
  a wildly asymmetric marginal).  The corrected oracle draws a fair
  meta-flip for the favored side and serves the disfavored value with
  probability exactly ε, so the marginal is 1/2 and both values keep
  the ε guarantee round by round.  The chi-square test here fails
  against the old semantics by four orders of magnitude.

* **Sim ≡ checker on the coin model.**  A ``CoinSpec`` is one object
  consumed by two semantics: the coin automaton's exact branch lottery
  (checker side) and ``sample_round`` (simulation side).  For each
  spec we read the lottery off the *built model's* toss rule and
  chi-square the sampled outcome counts against exactly those
  fractions — the two sides must describe the same coin.

Everything is seeded; tolerances guard semantics drift, not noise.
"""

import random
from fractions import Fraction

import pytest

from repro.protocols.registry import by_name
from repro.sim.coin import CommonCoin
from repro.sim.runner import Simulation, run
from repro.sim.adversary import RandomScheduler
from repro.sim import MMR14Process

#: χ² critical values at α = 0.01 by degrees of freedom.
CHI2_CRIT = {1: 6.63, 2: 9.21}

ROUNDS = 20_000


def _chi2(counts, expected_probs):
    total = sum(counts)
    stat = 0.0
    for observed, p in zip(counts, expected_probs):
        expected = total * float(p)
        stat += (observed - expected) ** 2 / expected
    return stat


def _common_draws(coin, rounds=ROUNDS):
    """The per-round common values (None = no common value)."""
    values = []
    for round_no in range(rounds):
        coin.get(round_no, 0)
        values.append(coin.peek(round_no))
    return values


class TestEpsilonSemantics:
    def test_strong_coin_keeps_legacy_sequence(self):
        """ε = 1/2 must replay the historical single-draw stream."""
        reference = random.Random(7)
        legacy = [1 if reference.random() < 0.5 else 0 for _ in range(64)]
        assert _common_draws(CommonCoin(seed=7), 64) == legacy
        assert _common_draws(CommonCoin(seed=7, spec="perfect"), 64) == legacy

    @pytest.mark.parametrize("epsilon", (0.1, 0.25, 0.4))
    def test_marginal_is_fair_for_small_epsilon(self, epsilon):
        values = _common_draws(CommonCoin(seed=11, epsilon=epsilon))
        counts = (values.count(0), values.count(1))
        stat = _chi2(counts, (0.5, 0.5))
        assert stat < CHI2_CRIT[1], (
            f"ε={epsilon}: marginal {counts} rejects fairness "
            f"(χ²={stat:.1f}) — the old P(1)=ε semantics leaked back"
        )

    def test_old_semantics_would_fail_this_pin(self):
        """Sanity: the pre-fix sampler is firmly rejected."""
        rng = random.Random(11)
        values = [1 if rng.random() < 0.1 else 0 for _ in range(ROUNDS)]
        counts = (values.count(0), values.count(1))
        assert _chi2(counts, (0.5, 0.5)) > 1000 * CHI2_CRIT[1]

    def test_spec_and_custom_epsilon_are_exclusive(self):
        with pytest.raises(ValueError):
            CommonCoin(epsilon=0.25, spec="biased:1/4")


class TestSpecSampling:
    def _model_lottery(self, protocol, coin):
        """The toss-rule lottery of the checker-side built model."""
        model = by_name(protocol).build_model(coin=coin)
        toss = next(r for r in model.coin.rules if r.name == "rb")
        by_value = {}
        for target, probability in toss.branches:
            by_value[target] = probability
        return by_value

    def test_biased_sampling_matches_checker_lottery(self):
        spec = "biased:1/4"
        lottery = self._model_lottery("cc85a", spec)
        assert lottery == {"T0": Fraction(3, 4), "T1": Fraction(1, 4)}
        values = _common_draws(CommonCoin(seed=5, spec=spec))
        counts = (values.count(0), values.count(1))
        stat = _chi2(counts, (lottery["T0"], lottery["T1"]))
        assert stat < CHI2_CRIT[1], (
            f"sim frequencies {counts} disagree with the coin "
            f"automaton's lottery (χ²={stat:.1f})"
        )

    def test_failing_sampling_matches_checker_lottery(self):
        spec = "failing:1/8"
        lottery = self._model_lottery("cc85a", spec)
        assert lottery == {"T0": Fraction(7, 16), "T1": Fraction(7, 16),
                           "Tbot": Fraction(1, 8)}
        values = _common_draws(CommonCoin(seed=5, spec=spec))
        counts = (values.count(0), values.count(1), values.count(None))
        stat = _chi2(counts, (lottery["T0"], lottery["T1"], lottery["Tbot"]))
        assert stat < CHI2_CRIT[2]

    def test_no_common_value_rounds_serve_split_private_bits(self):
        coin = CommonCoin(seed=1, spec="disagreeing:1/2")
        split_rounds = [r for r in range(200)
                        if coin.get(r, 0) is not None and coin.peek(r) is None]
        assert split_rounds, "ρ=1/2 produced no split rounds in 200"
        disagreements = 0
        for round_no in split_rounds:
            bits = [coin.get(round_no, pid) for pid in range(6)]
            # Re-reads are stable per process...
            assert bits == [coin.get(round_no, pid) for pid in range(6)]
            if len(set(bits)) > 1:
                disagreements += 1
        # ...and the views genuinely split between processes.
        assert disagreements > 0

    def test_private_bits_leave_common_stream_unperturbed(self):
        """Reader count must not shift later rounds' common draws."""
        few = CommonCoin(seed=9, spec="failing:1/2")
        many = CommonCoin(seed=9, spec="failing:1/2")
        for round_no in range(100):
            few.get(round_no, 0)
            for pid in range(10):
                many.get(round_no, pid)
        assert [few.peek(r) for r in range(100)] == \
            [many.peek(r) for r in range(100)]


class TestSimulationIntegration:
    def test_simulation_threads_the_spec(self):
        sim = Simulation(MMR14Process, n=4, t=1, inputs=[0, 1, 1],
                         coin="biased:1/4")
        assert sim.coin.spec is not None
        assert sim.coin.spec.spec_str() == "biased:1/4"

    def test_mmr14_still_agrees_under_a_biased_coin(self):
        """Random-scheduler MMR14 runs stay safe with P(1) = 1/4."""
        decided = 0
        for seed in range(6):
            sim = Simulation(MMR14Process, n=4, t=1, inputs=[0, 1, 1],
                             coin_seed=seed, coin="biased:1/4")
            result = run(sim, RandomScheduler(seed=seed), max_steps=20_000)
            assert result.agreement and result.validity
            decided += result.all_decided
        assert decided >= 4, "biased coin stalled most runs unexpectedly"
