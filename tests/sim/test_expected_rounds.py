"""Determinism and calibration of `repro.sim.runner.expected_rounds`.

The measurement drives one simulation per seed in ``range(runs)`` —
coin seed, scheduler seed and Byzantine noise all derive from that seed
sequence, so the mean decision round is a pure function of its
arguments.  The calibration smoke pins MMR14 at ``n=4, t=1`` near the
"4 expected rounds" folklore number the paper's §II quotes for the
fixed MMR14-family protocols.
"""

from repro.sim import MMR14Process, expected_rounds


class TestDeterminism:
    def test_same_seed_sequence_same_mean(self):
        kwargs = dict(n=4, t=1, inputs=[0, 0, 1], runs=25)
        first = expected_rounds(MMR14Process, **kwargs)
        second = expected_rounds(MMR14Process, **kwargs)
        assert first == second

    def test_mean_depends_on_the_seed_sequence_only(self):
        # Disjoint run counts use prefixes of the same seed sequence:
        # the 25-run mean is reproducible independently of a longer
        # measurement having run in the same process before.
        long = expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=50)
        short = expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=25)
        again = expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=50)
        assert long == again
        assert short == expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=25)

    def test_byzantine_noise_toggle_changes_the_chain(self):
        noisy = expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=25)
        quiet = expected_rounds(
            MMR14Process, 4, 1, [0, 0, 1], runs=25, with_byzantine_noise=False
        )
        # Both deterministic; the toggle selects a different chain.
        assert quiet == expected_rounds(
            MMR14Process, 4, 1, [0, 0, 1], runs=25, with_byzantine_noise=False
        )
        assert isinstance(noisy, float) and isinstance(quiet, float)


class TestFolkloreCalibration:
    def test_mmr14_lands_near_four_expected_rounds(self):
        """§II folklore: a strong common coin decides in ~4 expected
        rounds (2 per agreement on the coin, ≤2 for the coin to match
        the majority value).  The mixed-input measurement lands well
        inside [1.5, 6.5] — far below the unbounded adaptive-attack
        behaviour and above the 1-round unanimous fast path."""
        mean = expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=50)
        assert 1.5 <= mean <= 6.5

    def test_unanimous_inputs_decide_faster(self):
        unanimous = expected_rounds(MMR14Process, 4, 1, [0, 0, 0], runs=25)
        mixed = expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=25)
        assert unanimous <= mixed
        assert unanimous >= 1.0
