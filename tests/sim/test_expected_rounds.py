"""Determinism and calibration of `repro.sim.runner.expected_rounds`.

The measurement drives one simulation per seed in ``range(runs)`` —
coin seed, scheduler seed and Byzantine noise all derive from that seed
sequence, so the mean decision round is a pure function of its
arguments.  The calibration smoke pins MMR14 at ``n=4, t=1`` near the
"4 expected rounds" folklore number the paper's §II quotes for the
fixed MMR14-family protocols.
"""

import pytest

from repro.sim import MMR14Process, expected_rounds, expected_rounds_stats


class TestDeterminism:
    def test_same_seed_sequence_same_mean(self):
        kwargs = dict(n=4, t=1, inputs=[0, 0, 1], runs=25)
        first = expected_rounds(MMR14Process, **kwargs)
        second = expected_rounds(MMR14Process, **kwargs)
        assert first == second

    def test_mean_depends_on_the_seed_sequence_only(self):
        # Disjoint run counts use prefixes of the same seed sequence:
        # the 25-run mean is reproducible independently of a longer
        # measurement having run in the same process before.
        long = expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=50)
        short = expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=25)
        again = expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=50)
        assert long == again
        assert short == expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=25)

    def test_byzantine_noise_toggle_changes_the_chain(self):
        noisy = expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=25)
        quiet = expected_rounds(
            MMR14Process, 4, 1, [0, 0, 1], runs=25, with_byzantine_noise=False
        )
        # Both deterministic; the toggle selects a different chain.
        assert quiet == expected_rounds(
            MMR14Process, 4, 1, [0, 0, 1], runs=25, with_byzantine_noise=False
        )
        assert isinstance(noisy, float) and isinstance(quiet, float)


class TestCompletionFraction:
    """Regression: the old estimator silently dropped non-terminating
    runs from the mean — a protocol hanging 30% of the time reported
    the same number as one that always decides.  The mean is still
    conditional, but it now travels with the completion fraction."""

    def test_full_budget_completes_everything(self):
        stats = expected_rounds_stats(MMR14Process, 4, 1, [0, 0, 1],
                                      runs=20)
        assert stats.completion == 1.0
        assert stats.completed == stats.runs == 20
        assert stats.mean >= 1.0

    def test_starved_budget_shows_up_in_completion_not_the_mean(self):
        stats = expected_rounds_stats(MMR14Process, 4, 1, [0, 0, 1],
                                      runs=20, max_steps=40)
        assert stats.completion < 1.0
        if stats.completed == 0:
            assert stats.mean == float("inf")
        else:
            assert stats.mean >= 1.0


class TestSeedStreams:
    """Regression: coin and scheduler RNGs used to share one integer
    seed, correlating delivery order with the coin sequence across
    every run of a sweep.  ``"split"`` (default) decorrelates them;
    ``"legacy"`` pins the historical pairing for old golden numbers."""

    def test_split_and_legacy_are_distinct_deterministic_chains(self):
        kwargs = dict(n=4, t=1, inputs=[0, 0, 1], runs=25)
        split = expected_rounds(MMR14Process, **kwargs)
        legacy = expected_rounds(MMR14Process, seed_streams="legacy",
                                 **kwargs)
        assert split == expected_rounds(MMR14Process, **kwargs)
        assert legacy == expected_rounds(
            MMR14Process, seed_streams="legacy", **kwargs
        )
        assert split != legacy

    def test_unknown_stream_wiring_rejected(self):
        with pytest.raises(ValueError):
            expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=2,
                            seed_streams="zip")


class TestFolkloreCalibration:
    def test_mmr14_lands_near_four_expected_rounds(self):
        """§II folklore: a strong common coin decides in ~4 expected
        rounds (2 per agreement on the coin, ≤2 for the coin to match
        the majority value).  The mixed-input measurement lands well
        inside [1.5, 6.5] — far below the unbounded adaptive-attack
        behaviour and above the 1-round unanimous fast path."""
        mean = expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=50)
        assert 1.5 <= mean <= 6.5

    def test_unanimous_inputs_decide_faster(self):
        unanimous = expected_rounds(MMR14Process, 4, 1, [0, 0, 0], runs=25)
        mixed = expected_rounds(MMR14Process, 4, 1, [0, 0, 1], runs=25)
        assert unanimous <= mixed
        assert unanimous >= 1.0
