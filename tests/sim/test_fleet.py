"""Fleet engine tests: reproducibility, serialization, statistics, CLI.

The fleet contract under test: the report is a pure function of the
invocation (seed-reproducible across sharding), it round-trips through
JSON, its statistics always pair the conditional mean with the
completion fraction, and the §II adaptive attack shows up as a 0.0
completion for MMR14 while the fixed protocols shrug it off.  The
registry-wide statistical gate against the checker's MDP lives in
``test_checker_agreement.py`` (slow-gated); everything here is tier-1.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim.fleet import (
    FleetReport,
    RunRecord,
    run_fleet,
    wilson_interval,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def small_fleet(protocol="mmr14", **overrides):
    kwargs = dict(runs=30, max_steps=20_000)
    kwargs.update(overrides)
    return run_fleet(protocol, **kwargs)


class TestReproducibility:
    def test_same_invocation_same_report(self):
        first = small_fleet()
        second = small_fleet()
        assert first.to_dict() == second.to_dict()

    def test_sharded_report_equals_inline_report(self):
        """Sharding across pool workers must not change a single bit:
        every RNG stream derives from the run's seed alone."""
        inline = small_fleet(runs=24, processes=1)
        pooled = small_fleet(runs=24, processes=2)
        assert inline.records == pooled.records
        assert inline.to_dict() == pooled.to_dict()

    def test_base_seed_selects_the_sample(self):
        shifted = small_fleet(base_seed=10_000)
        baseline = small_fleet()
        assert [r.seed for r in shifted.records] == list(
            range(10_000, 10_030)
        )
        assert shifted.records != baseline.records


class TestSerialization:
    def test_json_round_trip(self):
        report = small_fleet(runs=20)
        wire = json.dumps(report.to_dict())
        restored = FleetReport.from_dict(json.loads(wire))
        assert restored.records == report.records
        assert restored.to_dict() == report.to_dict()

    def test_from_dict_rejects_other_kinds(self):
        with pytest.raises(ValueError):
            FleetReport.from_dict({"kind": "sweep_result"})


class TestStatistics:
    @pytest.fixture(scope="class")
    def report(self):
        return small_fleet(runs=40)

    def test_random_scheduling_completes_cleanly(self, report):
        assert report.completion == 1.0
        assert report.agreement_violations() == []
        assert report.validity_violations() == []
        assert report.error_seeds() == []

    def test_expected_rounds_with_interval(self, report):
        mean = report.expected_rounds()
        lo, hi = report.expected_rounds_interval()
        assert 1.0 <= mean < 20.0
        assert lo <= mean <= hi

    def test_termination_curve_is_a_monotone_cdf(self, report):
        curve = report.termination_curve()
        assert curve, "a fully-completed fleet has curve points"
        probabilities = [point["p"] for point in curve]
        assert probabilities == sorted(probabilities)
        assert curve[-1]["p"] == report.completion
        for point in curve:
            assert 0.0 <= point["lo"] <= point["p"] <= point["hi"] <= 1.0

    def test_category_a_terminates_by_convergence(self):
        report = small_fleet("rabin83", runs=15)
        assert report.completion == 1.0
        for record in report.records:
            assert record.decision_round is not None
            assert record.decision_value in (0, 1)


class TestErrorRecords:
    def _record(self, seed, **overrides):
        kwargs = dict(
            seed=seed, decided=True, decision_round=1, decision_value=0,
            rounds_reached=2, steps=100, agreement=True, validity=True,
        )
        kwargs.update(overrides)
        return RunRecord(**kwargs)

    def test_errors_count_against_completion_not_the_mean(self):
        report = FleetReport(
            protocol="mmr14", coin="perfect", scheduler="random",
            n=4, t=1, byzantine_count=1, max_steps=100, base_seed=0,
            records=[
                self._record(0),
                self._record(1, decided=False, decision_round=None,
                             decision_value=None, error="OSError: boom"),
            ],
        )
        assert report.error_seeds() == [1]
        assert [r.seed for r in report.ok_records] == [0]
        assert report.completion == 0.5
        assert report.expected_rounds() == 2.0  # 1-based, errors excluded

    def test_all_failed_means_infinite_mean(self):
        report = FleetReport(
            protocol="mmr14", coin="perfect", scheduler="random",
            n=4, t=1, byzantine_count=1, max_steps=100, base_seed=0,
            records=[self._record(0, decided=False, decision_round=None,
                                  decision_value=None)],
        )
        assert report.completion == 0.0
        assert report.expected_rounds() == float("inf")


class TestAdaptiveAttack:
    def test_mmr14_starves_under_the_adaptive_scheduler(self):
        report = small_fleet(scheduler="adaptive", runs=6, max_steps=4000)
        assert report.completion == 0.0
        # The attack breaks termination only, never safety.
        assert report.agreement_violations() == []
        assert report.validity_violations() == []
        assert all(r.rounds_reached > 10 for r in report.records)

    def test_fixed_protocol_survives_the_adaptive_scheduler(self):
        report = small_fleet("miller18", scheduler="adaptive", runs=4)
        assert report.completion == 1.0
        assert report.agreement_violations() == []


class TestValidation:
    def test_at_least_one_run(self):
        with pytest.raises(ValueError):
            run_fleet("mmr14", runs=0)

    def test_unknown_scheduler_rejected_before_spawning(self):
        with pytest.raises(ValueError):
            run_fleet("mmr14", scheduler="fifo")

    def test_adaptive_rejected_for_non_bv_protocols(self):
        with pytest.raises(ValueError):
            run_fleet("rabin83", scheduler="adaptive", runs=2)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(KeyError):
            run_fleet("paxos", runs=2)


class TestWilsonInterval:
    def test_empty_total_spans_everything(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_interval_brackets_the_point_estimate(self):
        for successes, total in ((0, 50), (13, 50), (50, 50)):
            lo, hi = wilson_interval(successes, total)
            assert 0.0 <= lo <= successes / total <= hi <= 1.0

    def test_interval_tightens_with_more_data(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]


class TestSimulateCli:
    def _simulate(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, "-m", "repro.harness", "simulate", *args],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            timeout=120,
        )

    def test_json_report_on_stdout(self):
        proc = self._simulate("mmr14", "--runs", "20", "--json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["kind"] == "fleet_report"
        assert payload["summary"]["runs"] == 20
        assert payload["summary"]["completion"] == 1.0

    def test_unknown_protocol_exits_2(self):
        proc = self._simulate("paxos", "--runs", "2")
        assert proc.returncode == 2
