"""Unit tests for the network and coin substrates."""

import pytest

from repro.sim.coin import CommonCoin
from repro.sim.network import Message, Network


class TestNetwork:
    def test_send_and_deliver(self):
        net = Network(3)
        envelope = net.send(0, 1, Message("EST", 0, 1))
        assert net.in_flight == 1
        delivered = net.deliver(envelope)
        assert delivered is envelope
        assert net.in_flight == 0
        assert net.delivered_count == 1

    def test_double_delivery_rejected(self):
        net = Network(3)
        envelope = net.send(0, 1, Message("EST", 0, 1))
        net.deliver(envelope)
        with pytest.raises(KeyError):
            net.deliver(envelope)

    def test_broadcast_reaches_everyone_including_sender(self):
        net = Network(4)
        envelopes = net.broadcast(2, Message("AUX", 1, 0))
        assert {e.recipient for e in envelopes} == {0, 1, 2, 3}
        assert all(e.sender == 2 for e in envelopes)

    def test_pending_filters(self):
        net = Network(3)
        net.send(0, 1, Message("EST", 0, 0))
        net.send(2, 1, Message("EST", 0, 1))
        net.send(0, 2, Message("AUX", 0, 0))
        assert len(net.pending(recipient=1)) == 2
        assert len(net.pending(sender=0)) == 2
        only_aux = net.pending(predicate=lambda e: e.message.kind == "AUX")
        assert len(only_aux) == 1

    def test_fifo_uid_order(self):
        net = Network(2)
        first = net.send(0, 1, Message("EST", 0, 0))
        second = net.send(0, 1, Message("EST", 0, 1))
        assert [e.uid for e in net.pending()] == [first.uid, second.uid]

    def test_pending_order_survives_interleaved_delivery(self):
        """Regression pin: ``pending`` used to re-sort its snapshot by
        uid on every call (quadratic over a run); insertion order *is*
        uid order, including after mid-queue deliveries, so the sort
        was dropped and this ordering is now load-bearing."""
        net = Network(3)
        a = net.send(0, 1, Message("EST", 0, 0))
        b = net.send(1, 2, Message("EST", 0, 1))
        c = net.send(2, 1, Message("AUX", 0, 0))
        net.deliver(b)
        d = net.send(0, 1, Message("AUX", 0, 1))
        assert [e.uid for e in net.pending()] == [a.uid, c.uid, d.uid]
        assert [e.uid for e in net.pending(recipient=1)] == [
            a.uid, c.uid, d.uid
        ]
        assert a.uid < b.uid < c.uid < d.uid


class TestCommonCoin:
    def test_same_value_for_all_processes(self):
        coin = CommonCoin(seed=1)
        assert coin.get(0, pid=1) == coin.get(0, pid=2) == coin.get(0, pid=3)

    def test_rounds_independent(self):
        coin = CommonCoin(seed=5)
        values = {coin.get(r, 0) for r in range(40)}
        assert values == {0, 1}  # a strong coin hits both sides

    def test_access_tracking(self):
        coin = CommonCoin(seed=0)
        assert not coin.revealed(3)
        assert coin.peek(3) is None
        coin.get(3, pid=7)
        assert coin.revealed(3)
        assert coin.first_accessor(3) == 7
        assert coin.peek(3) in (0, 1)

    def test_strong_coin_is_roughly_fair(self):
        coin = CommonCoin(seed=11)
        ones = sum(coin.get(r, 0) for r in range(400))
        assert 120 < ones < 280

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            CommonCoin(epsilon=0.0)
        with pytest.raises(ValueError):
            CommonCoin(epsilon=0.7)

    def test_weak_coin_marginal_stays_fair(self):
        # The ε-Good contract: each value with probability at least ε
        # per round, marginal 1/2.  (An earlier sampler implemented
        # P(1) = ε outright — the statistical pins live in
        # tests/sim/test_coin_stats.py.)
        coin = CommonCoin(seed=3, epsilon=0.1)
        ones = sum(coin.get(r, 0) for r in range(500))
        assert 200 < ones < 300
