"""End-to-end simulation tests: BV-broadcast, protocols, attack."""

import inspect
import sys

import pytest

from repro.sim import (
    ABY22Process,
    AdaptiveCoinAttack,
    EquivocatingByzantine,
    Miller18Process,
    MMR14Process,
    RandomScheduler,
    Simulation,
    expected_rounds,
    run,
)

PROTOCOLS = [MMR14Process, Miller18Process, ABY22Process]


def make_sim(cls, inputs, seed=0, n=4, t=1):
    return Simulation(cls, n=n, t=t, inputs=inputs, coin_seed=seed)


def random_run(cls, inputs, seed=0, with_byz=True, max_steps=60_000):
    sim = make_sim(cls, inputs, seed)
    scheduler = RandomScheduler(seed=seed)
    if with_byz:
        scheduler.byzantine = EquivocatingByzantine(list(sim.byzantine))
    return sim, run(sim, scheduler, max_steps=max_steps)


@pytest.mark.parametrize("cls", PROTOCOLS, ids=lambda c: c.__name__)
class TestRandomRuns:
    def test_uniform_inputs_decide_that_value(self, cls):
        _sim, result = random_run(cls, [1, 1, 1], seed=2)
        assert result.all_decided
        assert set(result.decided.values()) == {1}

    def test_mixed_inputs_agree(self, cls):
        for seed in range(6):
            _sim, result = random_run(cls, [0, 0, 1], seed=seed)
            assert result.all_decided, f"seed {seed} did not decide"
            assert result.agreement
            assert result.validity

    def test_no_byzantine_still_works(self, cls):
        _sim, result = random_run(cls, [0, 1, 0], seed=4, with_byz=False)
        assert result.all_decided
        assert result.agreement

    def test_decisions_are_binary(self, cls):
        _sim, result = random_run(cls, [1, 0, 1], seed=9)
        assert set(result.decided.values()) <= {0, 1}


@pytest.mark.parametrize("cls", PROTOCOLS, ids=lambda c: c.__name__)
def test_expected_rounds_small(cls):
    """The paper's §II folklore: a handful of expected rounds."""
    mean = expected_rounds(cls, 4, 1, [0, 0, 1], runs=15, max_steps=60_000)
    assert mean < 8.0


class TestAdaptiveAttack:
    def test_mmr14_starves_forever(self):
        for seed in range(3):
            sim = make_sim(MMR14Process, [0, 0, 1], seed=seed)
            byz = EquivocatingByzantine(list(sim.byzantine))
            result = run(sim, AdaptiveCoinAttack(byz), max_steps=15_000)
            assert not any(v is not None for v in result.decided.values())
            # Many rounds elapsed without a decision: a genuine livelock.
            assert result.rounds_reached > 50
            # The estimate split survives (2 vs 1, either polarity).
            ests = [p.est for p in sim.correct.values()]
            assert len(set(ests)) == 2

    def test_attack_preserves_safety(self):
        """The attack breaks termination only — never agreement/validity."""
        sim = make_sim(MMR14Process, [0, 0, 1], seed=1)
        byz = EquivocatingByzantine(list(sim.byzantine))
        result = run(sim, AdaptiveCoinAttack(byz), max_steps=10_000)
        assert result.agreement and result.validity

    def test_starvation_iterates_instead_of_recursing(self):
        """Regression: ``next_envelope`` used to recurse once per
        skipped candidate, so a long starved run blew the interpreter
        stack.  A tight recursion headroom over the test's own depth
        must now survive thousands of starved steps."""
        sim = make_sim(MMR14Process, [0, 0, 1], seed=0)
        byz = EquivocatingByzantine(list(sim.byzantine))
        depth = len(inspect.stack())
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(depth + 120)
        try:
            result = run(sim, AdaptiveCoinAttack(byz), max_steps=20_000)
        finally:
            sys.setrecursionlimit(limit)
        assert result.rounds_reached > 50

    @pytest.mark.parametrize(
        "cls", [Miller18Process, ABY22Process], ids=lambda c: c.__name__
    )
    def test_fixed_protocols_survive_attack(self, cls):
        for seed in range(3):
            sim = make_sim(cls, [0, 0, 1], seed=seed)
            byz = EquivocatingByzantine(list(sim.byzantine))
            result = run(sim, AdaptiveCoinAttack(byz), max_steps=30_000)
            assert result.all_decided, f"{cls.__name__} seed {seed} starved"
            assert result.agreement
            assert result.validity


class TestBVBroadcast:
    def test_justification_no_fabricated_values(self):
        """bin_values only ever contains correct proposals (uniform case)."""
        sim, result = random_run(MMR14Process, [0, 0, 0], seed=5)
        for process in sim.correct.values():
            for state in process._rounds.values():
                assert state.bin_values <= {0}

    def test_echo_amplifies_minority(self):
        """A single correct 1-proposer still gets 1 into bin_values
        (obligation needs t+1 correct, so here byz help is required)."""
        sim, result = random_run(MMR14Process, [1, 1, 0], seed=6)
        assert result.all_decided


class TestABY22ReportQuorum:
    def test_output_needs_a_unanimous_report_quorum(self):
        """Regression: the BCA output rule used to fire on ``n - 2t``
        exact-``{v}`` reports among the first ``n - t`` collected, which
        a per-receiver-equivocating Byzantine report could split into
        opposite decisions (seeds 2, 10, 19, 26 of the mixed fleet all
        violated agreement).  The fix requires *every* collected report
        to be exactly ``{v}``."""
        from repro.sim.fleet import run_fleet

        report = run_fleet("aby22", runs=40, max_steps=20_000)
        assert report.agreement_violations() == []
        assert report.validity_violations() == []
        assert report.completion == 1.0


class TestSimulationValidation:
    def test_input_count_checked(self):
        with pytest.raises(ValueError):
            Simulation(MMR14Process, n=4, t=1, inputs=[0, 0])

    def test_byzantine_budget_checked(self):
        with pytest.raises(ValueError):
            Simulation(MMR14Process, n=4, t=1, inputs=[0], byzantine_count=3)

    def test_negative_byzantine_count_rejected(self):
        """Regression: a negative count used to fabricate extra
        "correct" processes past ``n`` instead of raising."""
        with pytest.raises(ValueError):
            Simulation(MMR14Process, n=4, t=1, inputs=[0] * 5,
                       byzantine_count=-1)

    def test_processes_keep_running_after_decision(self):
        sim, result = random_run(MMR14Process, [1, 1, 1], seed=0)
        assert result.rounds_reached >= max(
            r for r in result.decision_rounds.values()
        )
