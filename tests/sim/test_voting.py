"""Voting-family protocols: safety, termination, convergence.

The five non-BV registry rows (Rabin83, CC85a/b, FMR05, KS16) share the
threshold-vote round structure of :mod:`repro.sim.voting`: broadcast a
VOTE, collect ``n - t``, classify the counts as decide / adopt / coin.
These tests drive each through the same registry wiring the fleet uses
(mixed inputs, Byzantine equivocation noise, split seed streams) and
check the consensus properties plus the two category-A specifics —
Rabin83 never decides, it *converges*.
"""

import pytest

from repro.sim import Simulation, run, split_seed
from repro.sim.registry import sim_by_name
from repro.sim.voting import converged_round

DECIDERS = ["cc85a", "cc85b", "fmr05", "ks16"]


def run_cell(name, seed, inputs=None, max_steps=40_000):
    proto = sim_by_name(name)
    sim = Simulation(
        proto.process_cls, proto.n, proto.t,
        proto.mixed_inputs() if inputs is None else inputs,
        coin_seed=split_seed(seed, "coin"),
        byzantine_count=proto.f,
    )
    scheduler = proto.make_scheduler(
        sim, "random", split_seed(seed, "scheduler")
    )
    result = run(sim, scheduler, max_steps=max_steps,
                 stop=proto.stop_predicate())
    return proto, sim, result


@pytest.mark.parametrize("name", DECIDERS)
class TestDeciders:
    def test_mixed_inputs_terminate_safely(self, name):
        for seed in range(5):
            proto, sim, result = run_cell(name, seed)
            assert proto.termination_round(sim) is not None, (
                f"{name} seed {seed} did not decide"
            )
            assert result.agreement
            assert result.validity

    def test_unanimous_inputs_decide_that_value(self, name):
        proto, sim, _result = run_cell(
            name, seed=3, inputs=[1] * sim_by_name(name).n_correct
        )
        assert proto.termination_value(sim) == 1

    def test_decision_value_matches_a_proposal(self, name):
        proto, sim, _result = run_cell(name, seed=7)
        assert proto.termination_value(sim) in (0, 1)


class TestRabin83Convergence:
    def test_converges_without_deciding(self):
        for seed in range(5):
            proto, sim, result = run_cell("rabin83", seed)
            round_no = converged_round(sim)
            assert round_no is not None, f"seed {seed} never converged"
            votes = {p.vote_log[round_no] for p in sim.correct.values()}
            assert len(votes) == 1
            # Category A: estimate convergence, no decide action ever.
            assert all(v is None for v in result.decided.values())

    def test_termination_value_is_the_unanimous_vote(self):
        proto, sim, _result = run_cell("rabin83", seed=2)
        value = proto.termination_value(sim)
        round_no = converged_round(sim)
        assert value in (0, 1)
        assert all(
            p.vote_log[round_no] == value for p in sim.correct.values()
        )

    def test_fresh_simulation_has_not_converged(self):
        proto = sim_by_name("rabin83")
        sim = Simulation(proto.process_cls, proto.n, proto.t,
                         proto.mixed_inputs(), byzantine_count=proto.f)
        assert converged_round(sim) is None


class TestVoteLog:
    def test_every_voted_round_is_logged(self):
        """``vote_log`` (the convergence observable) covers every round
        the process entered, with binary votes."""
        _proto, sim, _result = run_cell("cc85a", seed=1)
        for process in sim.correct.values():
            assert set(process.vote_log) == set(range(process.round + 1))
            assert set(process.vote_log.values()) <= {0, 1}
