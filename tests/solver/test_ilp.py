"""Tests for branch & bound integer feasibility, vs brute force."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.ilp import SAT, UNKNOWN, UNSAT, ilp_feasible
from repro.solver.linear import LinearProblem


class TestBasics:
    def test_integral_solution_found(self):
        p = LinearProblem().ge({"x": 1}, -3)  # x >= 3
        result = ilp_feasible(p)
        assert result.is_sat
        assert result.model["x"] >= 3

    def test_fractional_only_is_unsat(self):
        p = LinearProblem().eq({"x": 2}, -1)  # 2x = 1: no integer
        assert ilp_feasible(p).status == UNSAT

    def test_branching_finds_interior_point(self):
        # 2x = y, y <= 5, y >= 3 -> y = 4, x = 2
        p = LinearProblem()
        p.eq({"x": 2, "y": -1}, 0)
        p.le({"y": 1}, -5)
        p.ge({"y": 1}, -3)
        result = ilp_feasible(p)
        assert result.is_sat
        assert result.model == {"x": 2, "y": 4}

    def test_model_verified(self):
        p = LinearProblem()
        p.ge({"a": 3, "b": -2}, -1)
        p.eq({"a": 1, "b": 1}, -7)
        result = ilp_feasible(p)
        assert result.is_sat
        assert p.check(result.model)

    def test_node_budget_reports_unknown(self):
        # 2x - 2y = 1 has no integer solution but an unbounded LP
        # relaxation; a tiny node budget must give up cleanly.
        p = LinearProblem().eq({"x": 2, "y": -2}, -1)
        result = ilp_feasible(p, max_nodes=3)
        assert result.status in (UNSAT, UNKNOWN)

    def test_resilience_condition_instance(self):
        # n > 3t, t >= f >= 1: the smallest witness is (4, 1, 1).
        p = LinearProblem()
        p.ge({"n": 1, "t": -3}, -1)
        p.ge({"t": 1, "f": -1}, 0)
        p.ge({"f": 1}, -1)
        result = ilp_feasible(p)
        assert result.is_sat
        n, t, f = result.model["n"], result.model["t"], result.model["f"]
        assert n > 3 * t and t >= f >= 1


def _brute_force(problem: LinearProblem, box: int) -> bool:
    names = problem.variables()
    for point in itertools.product(range(box + 1), repeat=len(names)):
        if problem.check(dict(zip(names, point))):
            return True
    return False


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_agrees_with_brute_force_in_a_box(data):
    """Within a bounding box, B&B and brute force agree exactly."""
    n = data.draw(st.integers(1, 3))
    m = data.draw(st.integers(1, 4))
    box = 4
    problem = LinearProblem()
    for _ in range(m):
        coeffs = {
            f"x{j}": data.draw(st.integers(-3, 3), label="coeff")
            for j in range(n)
        }
        const = data.draw(st.integers(-8, 8), label="const")
        sense = data.draw(st.sampled_from([">=", "=="]), label="sense")
        if sense == "==":
            problem.eq(coeffs, const)
        else:
            problem.ge(coeffs, const)
    # Close the box so both searches consider the same space.
    for j in range(n):
        problem.le({f"x{j}": 1}, -box)
    ours = ilp_feasible(problem, max_nodes=20_000)
    assert ours.status in (SAT, UNSAT)
    assert ours.is_sat == _brute_force(problem, box)
    if ours.is_sat:
        assert problem.check(ours.model)
