"""Tests for the exact phase-1 simplex, cross-checked against scipy."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.solver.linear import LinearProblem
from repro.solver.simplex import lp_feasible


class TestBasics:
    def test_empty_problem_feasible(self):
        assert lp_feasible(LinearProblem()).feasible

    def test_simple_feasible(self):
        p = LinearProblem().ge({"x": 1}, -2)  # x >= 2
        result = lp_feasible(p)
        assert result.feasible
        assert result.assignment["x"] >= 2

    def test_simple_infeasible(self):
        p = LinearProblem().ge({"x": -1}, -1)  # -x - 1 >= 0 => x <= -1
        assert not lp_feasible(p).feasible

    def test_conflicting_bounds(self):
        p = LinearProblem()
        p.ge({"x": 1}, -5)   # x >= 5
        p.le({"x": 1}, -3)   # x <= 3
        assert not lp_feasible(p).feasible

    def test_equality(self):
        p = LinearProblem().eq({"x": 1, "y": -1}, 0).ge({"x": 1}, -1)
        result = lp_feasible(p)
        assert result.feasible
        assert result.assignment.get("x", 0) == result.assignment.get("y", 0)

    def test_fractional_vertex(self):
        p = LinearProblem()
        p.eq({"x": 2}, -1)  # 2x = 1
        result = lp_feasible(p)
        assert result.feasible
        assert result.assignment["x"] == Fraction(1, 2)

    def test_assignment_satisfies_problem(self):
        p = LinearProblem()
        p.ge({"x": 1, "y": 2}, -4)   # x + 2y >= 4
        p.le({"x": 1, "y": 1}, -10)  # x + y <= 10
        result = lp_feasible(p)
        assert result.feasible
        assert p.check(result.assignment)

    def test_flow_conservation_shape(self):
        # A miniature counter-system flow: n0 = in - out chain.
        p = LinearProblem()
        p.eq({"start": 1, "r1": -1}, 0)          # everyone leaves start
        p.eq({"r1": 1, "r2": -1, "stay": -1}, 0)  # split at the middle
        p.ge({"start": 1}, -3)                    # at least 3 processes
        result = lp_feasible(p)
        assert result.feasible
        assert p.check(result.assignment)


def _scipy_feasible(constraints, n):
    """Feasibility of the same system via scipy.linprog (floats)."""
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for coeffs, const, sense in constraints:
        row = [0.0] * n
        for j, c in coeffs.items():
            row[j] = float(c)
        if sense == "==":
            a_eq.append(row)
            b_eq.append(-float(const))
        else:  # coeffs.x + const >= 0 -> -coeffs.x <= const
            a_ub.append([-v for v in row])
            b_ub.append(float(const))
    result = linprog(
        c=[0.0] * n,
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=[(0, None)] * n,
        method="highs",
    )
    return result.status == 0


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_agrees_with_scipy_on_random_systems(data):
    n = data.draw(st.integers(1, 4))
    m = data.draw(st.integers(1, 5))
    constraints = []
    problem = LinearProblem()
    for _ in range(m):
        coeffs = {
            j: data.draw(st.integers(-3, 3), label="coeff") for j in range(n)
        }
        coeffs = {j: c for j, c in coeffs.items() if c}
        const = data.draw(st.integers(-6, 6), label="const")
        sense = data.draw(st.sampled_from([">=", "=="]), label="sense")
        constraints.append((coeffs, const, sense))
        named = {f"x{j}": c for j, c in coeffs.items()}
        if sense == "==":
            problem.eq(named, const)
        else:
            problem.ge(named, const)
    ours = lp_feasible(problem).feasible
    reference = _scipy_feasible(constraints, n)
    assert ours == reference
