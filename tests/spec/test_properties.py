"""Tests for the property library (Table III formulas and location sets)."""

import pytest

from repro.errors import CheckError
from repro.protocols import mmr14, naive_voting
from repro.spec.obligations import (
    agreement_obligations,
    obligations_for,
    termination_obligations,
    validity_obligations,
)
from repro.spec.properties import PropertyLibrary


@pytest.fixture(scope="module")
def lib():
    return PropertyLibrary(mmr14.model())


@pytest.fixture(scope="module")
def refined_lib():
    return PropertyLibrary(mmr14.refined_model())


class TestLocationSets:
    def test_partitions(self, lib):
        assert lib.initial_locs(0) == ("I0",)
        assert set(lib.final_locs(1)) == {"E1", "D1"}
        assert lib.decision_locs(0) == ("D0",)
        assert lib.estimate_locs(0) == ("E0",)

    def test_undecided_finals(self, lib):
        assert set(lib.undecided_finals(0)) == {"E0", "E1", "D1"}

    def test_start_filter(self, lib):
        assert lib.all_start_with(0) == {"J1": 0}
        assert lib.all_start_with(1) == {"J0": 0}

    def test_start_filter_without_borders(self):
        lib = PropertyLibrary(naive_voting.model())
        assert lib.all_start_with(0) == {"I1": 0}

    def test_crusader_roles(self, refined_lib):
        assert refined_lib.crusader("M0") == "M0"
        assert refined_lib.crusader("Nbot") == "Nbot"

    def test_missing_crusader_role_raises(self, lib):
        with pytest.raises(CheckError):
            lib.crusader("N0")


class TestTableIIIFormulas:
    def test_inv1(self, lib):
        query = lib.inv1(0)
        assert query.formula == "A F (EX{D0}) → G (¬EX{E1, D1})"
        assert len(query.events) == 2

    def test_inv2(self, lib):
        query = lib.inv2(0)
        assert query.formula == "A ALL{I0} → G (¬EX{E1, D1})"
        assert query.init_filter == {"J1": 0}
        assert len(query.events) == 1

    def test_c1(self, lib):
        query = lib.c1()
        assert query.formula == "A F (EX{E0, D0}) → G (¬EX{E1, D1})"

    def test_c2_shares_inv2_formula(self, lib):
        assert lib.c2(0).formula == lib.inv2(0).formula

    def test_c2prime(self, lib):
        query = lib.c2prime(0)
        assert "ALL{I0}" in query.formula
        assert set(query.events[0].locations) == {"E0", "E1", "D1"}

    def test_cb0(self, refined_lib):
        query = refined_lib.cb(0)
        assert query.formula == "A F (EX{M0}) → G (¬EX{M1})"

    def test_cb2_uses_refinement_location(self, refined_lib):
        query = refined_lib.cb(2)
        assert query.formula == "A F (EX{N0}) → G (¬EX{M1})"

    def test_cb4_excludes_both(self, refined_lib):
        query = refined_lib.cb(4)
        assert set(query.events[1].locations) == {"M0", "M1"}

    def test_unknown_cb_rejected(self, refined_lib):
        with pytest.raises(CheckError):
            refined_lib.cb(5)


class TestObligations:
    def test_agreement_bundle(self):
        bundle = agreement_obligations(mmr14.model())
        assert len(bundle.reach_queries) == 2
        assert bundle.target == "agreement"

    def test_validity_bundle(self):
        bundle = validity_obligations(mmr14.model())
        assert {q.name for q in bundle.reach_queries} == {"inv2[0]", "inv2[1]"}

    def test_category_c_termination_bundle(self):
        bundle = termination_obligations(mmr14.refined_model())
        assert len(bundle.reach_queries) == 5  # CB0..CB4
        assert len(bundle.game_queries) == 2   # C2'[0], C2'[1]

    def test_category_missing_raises(self):
        with pytest.raises(CheckError):
            termination_obligations(naive_voting.model())

    def test_dispatch(self):
        bundle = obligations_for(mmr14.model(), "validity")
        assert bundle.target == "validity"
        with pytest.raises(CheckError):
            obligations_for(mmr14.model(), "liveness")
