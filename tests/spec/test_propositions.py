"""Unit tests for atomic propositions."""

import pytest

from repro.counter.system import CounterSystem
from repro.protocols import naive_voting
from repro.spec.propositions import Prop, PropKind, none_at, some_at


@pytest.fixture(scope="module")
def system():
    return CounterSystem(naive_voting.model(), {"n": 3, "f": 1})


class TestEvaluation:
    def test_some_at(self, system):
        config = system.make_config({"I0": 1, "S": 1})
        assert some_at("I0").holds(system, config)
        assert some_at("D0").holds(system, config) is False
        assert some_at("I0", "D0").holds(system, config)

    def test_bound(self, system):
        config = system.make_config({"S": 2})
        assert some_at("S", bound=2).holds(system, config)
        assert not some_at("S", bound=3).holds(system, config)

    def test_none_at(self, system):
        config = system.make_config({"I0": 2})
        assert none_at("D0", "D1").holds(system, config)
        assert not none_at("I0").holds(system, config)

    def test_rounds_are_local(self, system):
        config = system.make_config({"I0": 1}, rounds=2)
        assert some_at("I0").holds(system, config, round_no=0)
        assert not some_at("I0").holds(system, config, round_no=1)


class TestNegation:
    def test_some_none_duality(self):
        prop = some_at("A", "B")
        assert prop.negated() == none_at("A", "B")
        assert none_at("A", "B").negated() == prop

    def test_negating_counting_prop_rejected(self):
        with pytest.raises(ValueError):
            some_at("A", bound=2).negated()

    def test_zero_bound_rejected(self):
        with pytest.raises(ValueError):
            Prop(PropKind.SOME, ("A",), bound=0)


class TestPresentation:
    def test_str_matches_paper_shorthand(self):
        assert str(some_at("D0")) == "EX{D0}"
        assert str(none_at("E1", "D1")) == "¬EX{E1, D1}"
        assert str(some_at("S", bound=2)) == "#[S] >= 2"
